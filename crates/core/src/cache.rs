//! The Bi-Modal DRAM cache controller (Section III-D).
//!
//! Ties together the bi-modal sets, the SRAM way locator, the block size
//! predictor and the DRAM layouts into the three access flows of the
//! paper:
//!
//! 1. **Way locator hit** — one DRAM data access, no metadata read at all.
//! 2. **Way locator miss, cache hit** — tag read on the metadata bank
//!    issued *in parallel* with opening the data row on another channel;
//!    after the 18-way compare, a column access on the (already open) data
//!    row.
//! 3. **Cache miss** — the block size predictor picks big or small, the
//!    fill is fetched off-chip at that granularity, and the Table II rules
//!    place it (aligning the set state toward the global target).

use bimodal_prng::SmallRng;

use bimodal_dram::{
    Cycle, DeferredOp, DramConfig, MemorySystem, Op, Request, RowEvent, TrafficClass,
};
use bimodal_obs::anatomy::{self, Component};
use bimodal_obs::span::{self, SpanId};

use crate::adaptive::GlobalMixController;
use crate::geometry::{BlockSize, CacheGeometry};
use crate::layout::DataLayout;
use crate::metadata::{MetadataLayout, MetadataPlacement};
use crate::miss_predictor::MissPredictor;
use crate::predictor::{BlockSizePredictor, PredictorConfig, UtilizationTracker};
use crate::resilience::{random_tag_xor, ContentsDigest, EccLedger, FaultTarget, MetadataFault};
use crate::scheme::{AccessKind, AccessOutcome, CacheAccess, DramCacheScheme};
use crate::set::{BiModalSet, Victim, WayRef};
use crate::sram::SramModel;
use crate::stats::SchemeStats;
use crate::way_locator::{WayLocator, WayLocatorConfig};

/// Victim selection policy on replacement.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ReplacementPolicy {
    /// The paper's policy: randomly replace a way that is *not* currently
    /// pointed at by the way locator (i.e. not one of the top-2 MRU ways).
    RandomNotRecent,
    /// Pure random replacement (ablation).
    Random,
}

/// Full configuration of a [`BiModalCache`].
#[derive(Debug, Clone)]
pub struct BiModalConfig {
    /// Cache geometry (capacity, set size, block sizes).
    pub geometry: CacheGeometry,
    /// Physical address width, for way-locator sizing.
    pub addr_bits: u32,
    /// Way locator configuration; `None` disables it (the *Bi-Modal-Only*
    /// ablation of Figure 8a).
    pub way_locator: Option<WayLocatorConfig>,
    /// Block size predictor configuration.
    pub predictor: PredictorConfig,
    /// When false, every fill is a big block (the *Way-Locator-Only* /
    /// fixed-512 B ablation).
    pub bimodal: bool,
    /// Where metadata lives (dedicated bank vs co-located, Figure 9b).
    pub metadata_placement: MetadataPlacement,
    /// Victim selection policy.
    pub replacement: ReplacementPolicy,
    /// Weight `W` of the global mix controller (paper: 0.75).
    pub adapt_weight: f64,
    /// Accesses per adaptation epoch (paper: 1 M).
    pub adapt_epoch: u64,
    /// Cycles to compare up-to-18 tags after the metadata burst arrives.
    pub tag_compare_cycles: Cycle,
    /// When true, prefetch requests that miss bypass the cache
    /// (PREF_BYPASS of Table VI).
    pub prefetch_bypass: bool,
    /// Deploy the optional hit/miss predictor (footnote 11): predicted
    /// misses start their off-chip fetch in parallel with the tag check.
    pub miss_predictor: bool,
    /// Adjust the utilization threshold `T` at run time (footnote 9):
    /// sustained under-use of big blocks raises `T`, frequent small-to-big
    /// promotions lower it.
    pub adaptive_threshold: bool,
    /// The stacked-DRAM module this cache will be laid out on. Must match
    /// the `MemorySystem` used at access time.
    pub stacked_dram: DramConfig,
    /// Protect metadata entries with SECDED ECC check bytes. Injected
    /// metadata faults are then detected at the next tag probe (corrected
    /// if single-bit) instead of silently corrupting tags, at the cost of
    /// wider metadata entries and tag reads.
    pub metadata_ecc: bool,
    /// RNG seed for the replacement policy.
    pub seed: u64,
}

impl BiModalConfig {
    /// Paper-default configuration for a cache of `mb` megabytes: 512 B /
    /// 64 B blocks, 2 KB sets, K=14 way locator, P=16 predictor with T=5,
    /// dedicated metadata bank, random-not-recent replacement.
    ///
    /// The address width scales with capacity as in Table III (4 GB of
    /// memory per 128 MB of cache).
    ///
    /// # Panics
    ///
    /// Panics if `mb` is not a power of two.
    #[must_use]
    pub fn for_cache_mb(mb: u64) -> Self {
        let geometry = CacheGeometry::paper_default(mb << 20);
        // log2(capacity) + 5: 4 GB of memory per 128 MB of cache
        // (Table III's ratio), so 128 MB -> 32-bit addresses.
        let addr_bits = (mb << 20).trailing_zeros() + 5;
        BiModalConfig::for_geometry(geometry, addr_bits)
    }

    /// Paper-default knobs for an arbitrary geometry.
    #[must_use]
    pub fn for_geometry(geometry: CacheGeometry, addr_bits: u32) -> Self {
        geometry.validate().expect("geometry must be valid");
        let offset_bits = geometry.offset_bits();
        let subs = geometry.sub_blocks();
        let predictor = PredictorConfig {
            offset_bits,
            // Scale the paper's 5-of-8 threshold to other ratios.
            threshold: ((5 * subs).div_ceil(8)).max(1),
            ..PredictorConfig::paper_default()
        };
        let stacked_dram = if geometry.set_bytes <= 2048 {
            DramConfig::stacked(2, 8)
        } else {
            let mut d = DramConfig::stacked(2, 8);
            d.row_bytes = geometry.set_bytes;
            d
        };
        BiModalConfig {
            way_locator: Some(WayLocatorConfig {
                index_bits: 14,
                addr_bits,
                offset_bits,
            }),
            predictor,
            bimodal: true,
            metadata_placement: MetadataPlacement::DedicatedBank,
            replacement: ReplacementPolicy::RandomNotRecent,
            adapt_weight: 0.75,
            adapt_epoch: 1_000_000,
            tag_compare_cycles: 2,
            prefetch_bypass: false,
            miss_predictor: false,
            adaptive_threshold: false,
            stacked_dram,
            metadata_ecc: false,
            geometry,
            addr_bits,
            seed: 0x00B1_30DA_1CAC_4E01,
        }
    }

    /// The *Bi-Modal-Only* ablation: bi-modal fills, no way locator.
    #[must_use]
    pub fn bimodal_only(mut self) -> Self {
        self.way_locator = None;
        self
    }

    /// The *Way-Locator-Only* ablation: fixed 512 B blocks with the way
    /// locator.
    #[must_use]
    pub fn way_locator_only(mut self) -> Self {
        self.bimodal = false;
        self
    }

    /// A fixed-512 B organization with no way locator (the baseline of the
    /// wasted-bandwidth comparison, Figure 9a).
    #[must_use]
    pub fn fixed_big_blocks(mut self) -> Self {
        self.bimodal = false;
        self.way_locator = None;
        self
    }

    /// Switches metadata to the co-located layout (Figure 9b ablation).
    #[must_use]
    pub fn with_colocated_metadata(mut self) -> Self {
        self.metadata_placement = MetadataPlacement::CoLocated;
        self
    }

    /// Overrides the way-locator index width `K`.
    #[must_use]
    pub fn with_way_locator_bits(mut self, k: u32) -> Self {
        self.way_locator = Some(WayLocatorConfig {
            index_bits: k,
            addr_bits: self.addr_bits,
            offset_bits: self.geometry.offset_bits(),
        });
        self
    }

    /// Overrides the replacement policy.
    #[must_use]
    pub fn with_replacement(mut self, policy: ReplacementPolicy) -> Self {
        self.replacement = policy;
        self
    }

    /// Overrides the predictor threshold `T`.
    #[must_use]
    pub fn with_threshold(mut self, t: u32) -> Self {
        self.predictor.threshold = t;
        self
    }

    /// Overrides the adaptation weight `W`.
    #[must_use]
    pub fn with_weight(mut self, w: f64) -> Self {
        self.adapt_weight = w;
        self
    }

    /// Overrides the adaptation epoch length (useful for short runs).
    #[must_use]
    pub fn with_epoch(mut self, accesses: u64) -> Self {
        self.adapt_epoch = accesses;
        self
    }

    /// Overrides the tracker's set-sampling interval (scaled-down runs
    /// sample more densely so the predictor trains within the shorter
    /// window; the paper's full-scale runs use 1-in-32).
    ///
    /// # Panics
    ///
    /// Panics if `interval` is zero or does not divide the predictor's
    /// group size.
    #[must_use]
    pub fn with_sample_interval(mut self, interval: u64) -> Self {
        assert!(interval > 0, "sampling interval must be positive");
        assert!(
            self.predictor.group_regions.is_multiple_of(interval),
            "interval must divide the group size"
        );
        self.predictor.sample_interval = interval;
        self
    }

    /// Enables prefetch-miss bypass (PREF_BYPASS).
    #[must_use]
    pub fn with_prefetch_bypass(mut self, bypass: bool) -> Self {
        self.prefetch_bypass = bypass;
        self
    }

    /// Deploys the optional hit/miss predictor (the footnote 11
    /// extension): predicted misses overlap the off-chip fetch with the
    /// DRAM tag check, at the cost of wasted fetches on mispredictions.
    #[must_use]
    pub fn with_miss_predictor(mut self, enable: bool) -> Self {
        self.miss_predictor = enable;
        self
    }

    /// Enables run-time adjustment of the utilization threshold `T` (the
    /// footnote 9 extension).
    #[must_use]
    pub fn with_adaptive_threshold(mut self, enable: bool) -> Self {
        self.adaptive_threshold = enable;
        self
    }

    /// Uses the given stacked-DRAM configuration for layout decisions.
    #[must_use]
    pub fn with_stacked_dram(mut self, dram: DramConfig) -> Self {
        self.stacked_dram = dram;
        self
    }

    /// Protects metadata entries with SECDED ECC (see
    /// [`MetadataLayout::with_ecc`]).
    #[must_use]
    pub fn with_metadata_ecc(mut self, enable: bool) -> Self {
        self.metadata_ecc = enable;
        self
    }
}

/// The Bi-Modal DRAM cache.
#[derive(Debug)]
pub struct BiModalCache {
    name: String,
    geometry: CacheGeometry,
    /// Mask/shift snapshot of `geometry` for the per-access decode path.
    amap: crate::AddrMap,
    sets: Vec<BiModalSet>,
    way_locator: Option<WayLocator>,
    wl_cycles: Cycle,
    predictor: BlockSizePredictor,
    tracker: UtilizationTracker,
    global: GlobalMixController,
    layout: DataLayout,
    metadata: MetadataLayout,
    bimodal: bool,
    replacement: ReplacementPolicy,
    tag_compare_cycles: Cycle,
    prefetch_bypass: bool,
    miss_predictor: Option<MissPredictor>,
    adaptive_threshold: bool,
    /// Per-epoch signals for the adaptive threshold.
    epoch_under_used: u64,
    epoch_well_used: u64,
    epoch_promotions_base: u64,
    epoch_small_fills_base: u64,
    /// Injected metadata flips held by the ECC ledger: with SECDED on,
    /// a flip never reaches the live tags — it waits here until the next
    /// tag probe of its set decodes (and corrects or rejects) the entry.
    ledger: EccLedger,
    rng: SmallRng,
    stats: SchemeStats,
    config: BiModalConfig,
}

impl BiModalCache {
    /// Builds the cache.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is internally inconsistent (invalid
    /// geometry, set larger than a DRAM page, dedicated metadata with a
    /// single bank per channel).
    #[must_use]
    pub fn new(config: BiModalConfig) -> Self {
        let geometry = config.geometry.clone();
        geometry.validate().expect("geometry must be valid");
        let dedicated = config.metadata_placement == MetadataPlacement::DedicatedBank;
        let layout = DataLayout::new(&geometry, &config.stacked_dram, dedicated);
        let mut metadata = MetadataLayout::new(
            &geometry,
            &config.stacked_dram,
            &layout,
            config.metadata_placement,
        );
        if config.metadata_ecc {
            metadata = metadata.with_ecc();
        }
        let sets = (0..geometry.n_sets())
            .map(|_| BiModalSet::new(&geometry))
            .collect();
        let sram = SramModel::new();
        let way_locator = config.way_locator.map(WayLocator::new);
        let wl_cycles = way_locator
            .as_ref()
            .map_or(0, |wl| wl.config().lookup_cycles(&sram));
        let base_name = match (config.bimodal, way_locator.is_some()) {
            (true, true) => "BiModal",
            (true, false) => "BiModal-Only",
            (false, true) => "WayLocator-Only",
            (false, false) => "Fixed512",
        };
        let name = if config.miss_predictor {
            format!("{base_name}+MP")
        } else {
            base_name.to_owned()
        };
        BiModalCache {
            name,
            sets,
            way_locator,
            wl_cycles,
            predictor: BlockSizePredictor::new(config.predictor),
            tracker: UtilizationTracker::new(config.predictor),
            global: GlobalMixController::with_params(
                &geometry,
                config.adapt_weight,
                config.adapt_epoch,
            ),
            layout,
            metadata,
            bimodal: config.bimodal,
            replacement: config.replacement,
            tag_compare_cycles: config.tag_compare_cycles,
            prefetch_bypass: config.prefetch_bypass,
            miss_predictor: config.miss_predictor.then(MissPredictor::new),
            adaptive_threshold: config.adaptive_threshold,
            epoch_under_used: 0,
            epoch_well_used: 0,
            epoch_promotions_base: 0,
            epoch_small_fills_base: 0,
            ledger: EccLedger::new(),
            rng: SmallRng::seed_from_u64(config.seed),
            stats: SchemeStats::default(),
            amap: geometry.addr_map(),
            geometry,
            config,
        }
    }

    /// The configuration this cache was built with.
    #[must_use]
    pub fn config(&self) -> &BiModalConfig {
        &self.config
    }

    /// The way locator, if enabled.
    #[must_use]
    pub fn way_locator(&self) -> Option<&WayLocator> {
        self.way_locator.as_ref()
    }

    /// The block size predictor.
    #[must_use]
    pub fn predictor(&self) -> &BlockSizePredictor {
        &self.predictor
    }

    /// The global mix controller.
    #[must_use]
    pub fn global_mix(&self) -> &GlobalMixController {
        &self.global
    }

    /// The optional hit/miss predictor, if deployed.
    #[must_use]
    pub fn miss_predictor(&self) -> Option<&MissPredictor> {
        self.miss_predictor.as_ref()
    }

    /// The current utilization threshold `T` (moves when the adaptive
    /// threshold extension is enabled).
    #[must_use]
    pub fn threshold(&self) -> u32 {
        self.tracker.threshold()
    }

    /// Footnote-9 extension: once per adaptation epoch, move `T` against
    /// the observed failure mode. Sustained under-use of evicted big
    /// blocks (with few corrective promotions) means `T` admits too much
    /// sparse data as big: raise it. Frequent small-to-big promotions mean
    /// `T` demotes spatial data: lower it.
    fn adapt_threshold(&mut self) {
        let total = self.epoch_under_used + self.epoch_well_used;
        let promotions = self
            .predictor
            .promotions()
            .saturating_sub(self.epoch_promotions_base);
        let small_fills = self
            .stats
            .fills_small
            .saturating_sub(self.epoch_small_fills_base);
        let t = self.tracker.threshold();
        let max_t = self.geometry.sub_blocks() - 1;
        if total >= 32 {
            let under_frac = self.epoch_under_used as f64 / total as f64;
            if under_frac > 0.6 && promotions < total / 8 && t < max_t {
                self.tracker.set_threshold(t + 1);
            }
        }
        // Promotions pervasive relative to small fills mean the threshold
        // systematically demotes spatial regions: relax it. (Individual
        // misclassified regions are already fixed by their promotion.)
        if small_fills >= 64 && promotions > small_fills / 12 && t > 2 {
            self.tracker.set_threshold(self.tracker.threshold() - 1);
        }
        self.epoch_under_used = 0;
        self.epoch_well_used = 0;
        self.epoch_promotions_base = self.predictor.promotions();
        self.epoch_small_fills_base = self.stats.fills_small;
    }

    /// The granularity a fill for `addr` will actually use: the raw
    /// prediction, downgraded to big when neither the set nor the global
    /// target has small ways (Table II's degenerate (B, 0) case would
    /// otherwise fill a big block from a small fetch).
    fn effective_fill_size(&self, raw: BlockSize, set_idx: u64) -> BlockSize {
        if raw == BlockSize::Big {
            return BlockSize::Big;
        }
        let set_state = self.sets[usize::try_from(set_idx).expect("set fits usize")].state();
        if set_state.small == 0 && self.global.target().small == 0 {
            BlockSize::Big
        } else {
            BlockSize::Small
        }
    }

    /// The off-chip fetch a miss to `addr` would perform right now
    /// (address, bytes), per the block size predictor and the effective
    /// fill granularity.
    fn fetch_plan(&self, addr: u64) -> (u64, u32) {
        let big_base = self.amap.big_block_base(addr);
        let raw = if self.bimodal {
            self.predictor.peek(big_base)
        } else {
            BlockSize::Big
        };
        let set_idx = self.amap.set_of(addr);
        match self.effective_fill_size(raw, set_idx) {
            BlockSize::Small => (self.amap.small_block_base(addr), self.geometry.small_block),
            BlockSize::Big => (big_base, self.geometry.big_block),
        }
    }

    /// The current `(X, Y)` state of `set` (for adaptation studies).
    ///
    /// # Panics
    ///
    /// Panics if `set` is out of range.
    #[must_use]
    pub fn set_state(&self, set: u64) -> crate::geometry::SetState {
        self.sets[usize::try_from(set).expect("set index fits usize")].state()
    }

    fn full_addr(&self, tag: u64, set: u64, sub_block: u8) -> u64 {
        self.amap.reconstruct(tag, set)
            + u64::from(sub_block) * u64::from(self.geometry.small_block)
    }

    /// Chooses a victim way among `n` candidates honouring the
    /// random-not-recent policy: ways currently pointed at by the way
    /// locator are protected unless every candidate is. Bit `i` of
    /// `protected` marks way `i` as protected.
    ///
    /// The RNG draw sequence (one `usize` draw when any way is free, one
    /// `u8` draw when none is) matches the historical `Vec<bool>`-based
    /// implementation exactly, so seeded runs are unaffected.
    fn pick_victim(rng: &mut SmallRng, n: u8, protected: u64) -> u8 {
        // `protected` is computed before the insert; a Table II state
        // transition may grow the way count, and bits beyond the computed
        // count are clear (new ways are unprotected).
        let candidates = if n >= 64 { !0 } else { (1u64 << n) - 1 };
        let free = candidates & !protected;
        let n_free = free.count_ones();
        if n_free == 0 {
            rng.gen_range(0..n)
        } else {
            // The k-th set bit of `free` is the k-th unprotected way in
            // ascending order — the same element the old free-list indexed.
            let k = rng.gen_range(0..usize::try_from(n_free).expect("count fits usize"));
            let mut remaining = free;
            for _ in 0..k {
                remaining &= remaining - 1;
            }
            u8::try_from(remaining.trailing_zeros()).expect("way index fits u8")
        }
    }

    /// Computes the protected-way bitmask of `set`: bit `i` set means way
    /// `i` (of `size`) is currently pointed at by the way locator.
    fn protected_mask(&self, set_idx: u64, size: BlockSize) -> u64 {
        if self.replacement != ReplacementPolicy::RandomNotRecent {
            return 0;
        }
        let Some(wl) = self.way_locator.as_ref() else {
            return 0;
        };
        let set = &self.sets[usize::try_from(set_idx).expect("set fits usize")];
        let n = match size {
            BlockSize::Big => set.state().big,
            BlockSize::Small => set.state().small,
        };
        let mut mask = 0u64;
        for i in 0..n {
            if let Some((tag, sub)) = set.way_tag(WayRef { size, index: i }) {
                let addr = self.full_addr(tag, set_idx, sub);
                if wl.peek(addr).is_some() {
                    mask |= 1u64 << i;
                }
            }
        }
        mask
    }

    /// Handles an eviction: way-locator invalidation, dirty writebacks,
    /// waste accounting and predictor training.
    fn retire_victim(&mut self, victim: &Victim, set_idx: u64, at: Cycle, mem: &mut MemorySystem) {
        let _span = span::enter(SpanId::Writeback);
        let subs = self.geometry.sub_blocks();
        let small = u64::from(self.geometry.small_block);
        let base = self.amap.reconstruct(victim.tag, set_idx);
        let addr = base + u64::from(victim.sub_block) * small;
        if let Some(wl) = self.way_locator.as_mut() {
            wl.invalidate(addr, victim.size);
        }
        self.stats.evictions += 1;

        // Dirty sub-blocks go back to memory individually (Section III-B5),
        // deferred to when the eviction actually happens.
        match victim.size {
            BlockSize::Big => {
                for s in 0..subs {
                    if victim.dirty_mask & (1 << s) != 0 {
                        mem.defer(
                            at,
                            DeferredOp::MainWrite {
                                addr: base + u64::from(s) * small,
                                bytes: self.geometry.small_block,
                                class: TrafficClass::Writeback,
                            },
                        );
                        self.stats.writebacks += 1;
                        self.stats.offchip_writeback_bytes += u64::from(self.geometry.small_block);
                    }
                }
                // Fetched-but-never-referenced sub-blocks were wasted
                // off-chip bandwidth.
                let wasted = victim.unreferenced_sub_blocks(subs);
                self.stats.offchip_wasted_bytes +=
                    u64::from(wasted) * u64::from(self.geometry.small_block);
                let well_used = victim.referenced_mask.count_ones() >= self.tracker.threshold();
                if well_used {
                    self.stats.big_evictions_well_used += 1;
                    self.epoch_well_used += 1;
                } else {
                    self.stats.big_evictions_under_used += 1;
                    self.epoch_under_used += 1;
                }
                // Train the predictor: per-group counters learn from the
                // sampled sets (where the paper's tracker lives); the
                // application-level bias learns from every big eviction.
                if self.bimodal {
                    let worthy = self.tracker.classify(victim.referenced_mask);
                    if self.tracker.samples_set(set_idx) {
                        self.predictor.update(base, worthy);
                    } else {
                        self.predictor.update_bias_only(base, worthy);
                    }
                }
            }
            BlockSize::Small => {
                if victim.dirty_mask & 1 != 0 {
                    mem.defer(
                        at,
                        DeferredOp::MainWrite {
                            addr,
                            bytes: self.geometry.small_block,
                            class: TrafficClass::Writeback,
                        },
                    );
                    self.stats.writebacks += 1;
                    self.stats.offchip_writeback_bytes += u64::from(self.geometry.small_block);
                }
            }
        }
    }

    /// The miss path: predict, fetch, insert, retire victims, fill.
    #[allow(clippy::too_many_lines)]
    #[allow(clippy::too_many_arguments)] // the controller's central path
    fn service_miss(
        &mut self,
        access: CacheAccess,
        set_idx: u64,
        tag: u64,
        sub: u8,
        tags_checked: Cycle,
        speculative: Option<(bimodal_dram::Completion, u64, u32)>,
        mem: &mut MemorySystem,
    ) -> (Cycle, BlockSize) {
        let span_fill = span::enter(SpanId::Fill);
        let big_base = self.amap.big_block_base(access.addr);
        let small_base = self.amap.small_block_base(access.addr);

        let raw_prediction = if self.bimodal {
            let _g = span::enter(SpanId::PredictorLookup);
            self.predictor.predict(big_base)
        } else {
            BlockSize::Big
        };
        // Demand is recorded by the *raw* prediction, so the global mix
        // controller learns about small-block demand even while every set
        // is still in the all-big state.
        self.global.record_miss(raw_prediction == BlockSize::Big);
        // The fetch must match what the insert will actually do.
        let predicted = self.effective_fill_size(raw_prediction, set_idx);

        let (fetch_addr, fetch_bytes) = match predicted {
            BlockSize::Big => (big_base, self.geometry.big_block),
            BlockSize::Small => (small_base, self.geometry.small_block),
        };
        // Use the speculative fetch if it matches the plan (it always
        // does: no predictor state changes between speculation and here).
        let fetch = match speculative {
            Some((comp, sa, sb)) if sa == fetch_addr && sb == fetch_bytes => comp,
            Some((_, _, sb)) => {
                // Defensive: a mismatched speculation is wasted.
                self.stats.offchip_fetched_bytes += u64::from(sb);
                self.stats.offchip_wasted_bytes += u64::from(sb);
                self.stats.spec_wasted += 1;
                mem.main.set_class(TrafficClass::MainMemRefill);
                mem.main.read(fetch_addr, fetch_bytes, tags_checked)
            }
            None => {
                mem.main.set_class(TrafficClass::MainMemRefill);
                mem.main.read(fetch_addr, fetch_bytes, tags_checked)
            }
        };
        self.stats.offchip_fetched_bytes += u64::from(fetch_bytes);

        // Choose the insertion path per Table II, with random-not-recent
        // victims.
        let global_target = self.global.target();
        let protected = self.protected_mask(set_idx, predicted);
        let outcome = {
            let rng = &mut self.rng;
            let set = &mut self.sets[usize::try_from(set_idx).expect("set fits usize")];
            let mut pick = |n: u8| Self::pick_victim(rng, n, protected);
            set.insert(predicted, tag, sub, global_target, &mut pick)
        };

        // Absorbed small blocks vanish from the set; their locator entries
        // must vanish too.
        if outcome.absorbed_mask != 0 {
            let small = u64::from(self.geometry.small_block);
            for s in 0..self.geometry.sub_blocks() {
                if outcome.absorbed_mask & (1 << s) != 0 {
                    if let Some(wl) = self.way_locator.as_mut() {
                        wl.invalidate(big_base + u64::from(s) * small, BlockSize::Small);
                    }
                }
            }
        }

        for victim in &outcome.evicted {
            self.retire_victim(victim, set_idx, fetch.done, mem);
        }

        // Mark the requested line referenced (and dirty on writes).
        let set = &mut self.sets[usize::try_from(set_idx).expect("set fits usize")];
        set.touch(outcome.way, sub, access.is_write());
        match outcome.way.size {
            BlockSize::Big => self.stats.fills_big += 1,
            BlockSize::Small => {
                self.stats.fills_small += 1;
                // Promotion path: the tracker only observes big blocks, so
                // a region stuck in small fills could never be re-promoted.
                // The fill just read all the set's tags, so counting
                // resident small siblings of this region is free — once
                // half the region's lines sit in the set as small blocks,
                // the region is demonstrably spatial: train toward big.
                let promote_at = self.geometry.sub_blocks() / 2;
                if self.bimodal && set.small_sibling_count(tag) == promote_at {
                    self.predictor.promote(big_base);
                }
            }
        }

        // Record the new location in the way locator.
        if let Some(wl) = self.way_locator.as_mut() {
            wl.insert(access.addr, outcome.way.size, outcome.way.index);
        }

        // Fill the data into the cache row and update the metadata entry —
        // both off the critical path of the demand access.
        let data_loc = self.layout.set_location(set_idx);
        let fill_bytes = match outcome.way.size {
            BlockSize::Big => self.geometry.big_block,
            BlockSize::Small => self.geometry.small_block,
        };
        mem.defer(
            fetch.done,
            DeferredOp::CacheWrite {
                loc: data_loc,
                bytes: fill_bytes,
                class: TrafficClass::DataFill,
            },
        );
        let md_loc = self.metadata.metadata_location(set_idx, data_loc);
        // Only the filled way's tag entry is rewritten.
        mem.defer(
            fetch.done,
            DeferredOp::CacheWrite {
                loc: md_loc,
                bytes: 16,
                class: TrafficClass::MetadataWrite,
            },
        );

        span::add_cycles(SpanId::Fill, fetch.done.saturating_sub(tags_checked));
        drop(span_fill);
        (fetch.done, outcome.way.size)
    }

    /// Applies SECDED detection to every ledgered fault of `set_idx`: the
    /// tag probe that just completed decoded each protected entry of the
    /// set. Single-bit flips are corrected; multi-bit flips are detected
    /// but uncorrectable, so the affected way is dropped (its data array
    /// contents are fine — the entry describing them became unreadable).
    /// Either way a scrub write of the repaired entry goes back to the
    /// metadata bank off the critical path.
    fn scrub_set(&mut self, set_idx: u64, at: Cycle, mem: &mut MemorySystem) {
        for fault in self.ledger.drain_set(set_idx) {
            if fault.multi_bit {
                self.stats.ecc_detected_uncorrected += 1;
                if let Some(victim) = self.invalidate_faulted_way(&fault) {
                    // Dirty data survives: write it back before the way
                    // is recycled, exactly as an eviction would.
                    let small = u64::from(self.geometry.small_block);
                    let base = self.geometry.reconstruct(victim.tag, fault.set);
                    let subs = match victim.size {
                        BlockSize::Big => self.geometry.sub_blocks(),
                        BlockSize::Small => 1,
                    };
                    let first = u64::from(victim.sub_block);
                    for s in 0..subs {
                        if victim.dirty_mask & (1 << s) != 0 {
                            mem.defer(
                                at,
                                DeferredOp::MainWrite {
                                    addr: base + (first + u64::from(s)) * small,
                                    bytes: self.geometry.small_block,
                                    class: TrafficClass::Writeback,
                                },
                            );
                            self.stats.writebacks += 1;
                            self.stats.offchip_writeback_bytes +=
                                u64::from(self.geometry.small_block);
                        }
                    }
                }
            } else {
                self.stats.ecc_corrected += 1;
            }
            let data_loc = self.layout.set_location(set_idx);
            let md_loc = self.metadata.metadata_location(set_idx, data_loc);
            mem.defer(
                at,
                DeferredOp::CacheWrite {
                    loc: md_loc,
                    bytes: 8,
                    class: TrafficClass::Scrub,
                },
            );
        }
    }

    /// Drops the way a detected-uncorrectable metadata fault pointed at,
    /// together with its way-locator entry, returning the displaced block.
    fn invalidate_faulted_way(&mut self, fault: &MetadataFault) -> Option<Victim> {
        let way = WayRef {
            size: if fault.big {
                BlockSize::Big
            } else {
                BlockSize::Small
            },
            index: fault.way,
        };
        let set = &mut self.sets[usize::try_from(fault.set).expect("set fits usize")];
        let victim = set.invalidate_way(way)?;
        let base = self.geometry.reconstruct(victim.tag, fault.set);
        let addr = base + u64::from(victim.sub_block) * u64::from(self.geometry.small_block);
        if let Some(wl) = self.way_locator.as_mut() {
            wl.invalidate(addr, victim.size);
        }
        Some(victim)
    }
}

impl FaultTarget for BiModalCache {
    fn inject_metadata_flip(
        &mut self,
        rng: &mut SmallRng,
        multi_bit: bool,
    ) -> Option<MetadataFault> {
        // Probe sets from a random start for a resident entry to disturb;
        // a warmed cache finds one immediately, and an empty one returns
        // `None` after one wrap.
        let n_sets = self.sets.len();
        let start = rng.gen_range(0..n_sets);
        for probe in 0..n_sets {
            let idx = (start + probe) % n_sets;
            let ways = self.sets[idx].occupied_ways();
            if ways.is_empty() {
                continue;
            }
            let way = ways[rng.gen_range(0..ways.len())];
            let xor = random_tag_xor(rng, multi_bit);
            let apply = !self.metadata.ecc();
            let (orig_tag, new_tag) = if apply {
                self.sets[idx].corrupt_tag(way, xor)?
            } else {
                let (tag, _) = self.sets[idx].way_tag(way)?;
                (tag, tag ^ xor)
            };
            let fault = MetadataFault {
                set: idx as u64,
                big: way.size == BlockSize::Big,
                way: way.index,
                orig_tag,
                new_tag,
                multi_bit,
                applied: apply,
            };
            if !apply {
                self.ledger.push(fault);
            }
            return Some(fault);
        }
        None
    }

    fn inject_locator_flip(&mut self, rng: &mut SmallRng) -> bool {
        self.way_locator
            .as_mut()
            .is_some_and(|wl| wl.corrupt_random_way(rng))
    }

    fn inject_predictor_upset(&mut self, rng: &mut SmallRng) -> bool {
        if !self.bimodal {
            return false;
        }
        self.predictor.upset_counter(rng);
        true
    }

    fn contents_digest(&self) -> u64 {
        let mut d = ContentsDigest::new();
        for (i, set) in self.sets.iter().enumerate() {
            for v in set.residents() {
                d.mix(i as u64);
                d.mix(v.tag);
                d.mix(u64::from(v.sub_block));
                d.mix(u64::from(v.size == BlockSize::Big));
                d.mix(u64::from(v.dirty_mask));
                d.mix(u64::from(v.referenced_mask));
            }
        }
        d.value()
    }

    fn flush_faults(&mut self) -> (u64, u64) {
        let mut corrected = 0u64;
        let mut uncorrected = 0u64;
        for fault in self.ledger.drain_all() {
            if fault.multi_bit {
                uncorrected += 1;
                self.stats.ecc_detected_uncorrected += 1;
                // End-of-campaign accounting scrub: no run left to charge
                // the writebacks to, so just drop the way.
                self.invalidate_faulted_way(&fault);
            } else {
                corrected += 1;
                self.stats.ecc_corrected += 1;
            }
        }
        (corrected, uncorrected)
    }
}

impl DramCacheScheme for BiModalCache {
    fn name(&self) -> &str {
        &self.name
    }

    fn access(&mut self, access: CacheAccess, mem: &mut MemorySystem) -> AccessOutcome {
        debug_assert_eq!(
            mem.cache_dram.config(),
            &self.config.stacked_dram,
            "memory system does not match the cache layout"
        );
        mem.drain_deferred(access.now);
        self.stats.accesses += 1;
        match access.kind {
            AccessKind::Read => self.stats.reads += 1,
            AccessKind::Write => self.stats.writes += 1,
            AccessKind::Prefetch => self.stats.prefetches += 1,
        }
        if self.bimodal {
            // Epoch bookkeeping for the global mix controller; epoch
            // boundaries also drive the optional adaptive threshold.
            if self.global.record_access().is_some() && self.adaptive_threshold {
                self.adapt_threshold();
            }
        }

        let set_idx = self.amap.set_of(access.addr);
        let tag = self.amap.tag_of(access.addr);
        let sub = self.amap.sub_block_of(access.addr);
        let data_loc = self.layout.set_location(set_idx);
        let op = if access.is_write() {
            Op::Write
        } else {
            Op::Read
        };

        // ------------------------------------------------ way locator hit
        let locator_entry = {
            let _g = span::enter(SpanId::LocatorProbe);
            let entry = self
                .way_locator
                .as_mut()
                .and_then(|wl| wl.lookup(access.addr));
            if self.way_locator.is_some() {
                span::add_cycles(SpanId::LocatorProbe, self.wl_cycles);
            }
            entry
        };
        if let Some(entry) = locator_entry {
            let way = WayRef {
                size: entry.size,
                index: entry.way,
            };
            // Verify the hint against the authoritative set state before
            // spending the data access. The locator never mispredicts by
            // construction, but an injected soft error can corrupt its way
            // field: a poisoned hint must cost latency, never correctness.
            let resident = self.sets[usize::try_from(set_idx).expect("set fits usize")]
                .lookup(tag, sub)
                == Some(way);
            if resident {
                self.stats.locator_hits += 1;
                let start = access.now + self.wl_cycles;
                mem.cache_dram.set_class(TrafficClass::DataHit);
                let comp = mem.cache_dram.access(Request {
                    loc: data_loc,
                    bytes: self.geometry.small_block,
                    op,
                    arrival: start,
                });
                self.stats.data_accesses += 1;
                if comp.row_event == RowEvent::Hit {
                    self.stats.data_row_hits += 1;
                }
                if anatomy::active() {
                    anatomy::add(Component::Locator, self.wl_cycles);
                    anatomy::charge_dram(Component::DataBurst);
                }
                let set = &mut self.sets[usize::try_from(set_idx).expect("set fits usize")];
                set.touch(way, sub, access.is_write());
                if access.is_write() {
                    // Dirty-bit metadata update, off the critical path.
                    let md_loc = self.metadata.metadata_location(set_idx, data_loc);
                    mem.defer(
                        comp.done,
                        DeferredOp::CacheWrite {
                            loc: md_loc,
                            bytes: 8,
                            class: TrafficClass::MetadataWrite,
                        },
                    );
                }
                self.stats.hits += 1;
                if let Some(mp) = self.miss_predictor.as_mut() {
                    mp.update(access.addr, true);
                }
                let small = entry.size == BlockSize::Small;
                if small {
                    self.stats.small_hits += 1;
                    self.stats.small_block_accesses += 1;
                } else {
                    self.stats.big_hits += 1;
                }
                self.stats.breakdown.sram += self.wl_cycles;
                self.stats.breakdown.dram_data += comp.done.saturating_sub(start);
                self.stats.total_latency += comp.done.saturating_sub(access.now);
                return AccessOutcome {
                    complete: comp.done,
                    hit: true,
                    offchip_bytes: 0,
                    small_block: small,
                };
            }
            // Locator-vs-metadata mismatch: self-heal. Retract the bogus
            // SRAM hit, drop the poisoned entry, and fall through to the
            // full DRAM tag probe, which re-inserts a clean entry on hit.
            self.stats.locator_heals += 1;
            let wl = self
                .way_locator
                .as_mut()
                .expect("entry came from the locator");
            wl.retract_hit();
            wl.invalidate(access.addr, entry.size);
            self.stats.locator_misses += 1;
        } else if self.way_locator.is_some() {
            self.stats.locator_misses += 1;
        }

        // --------------------------- way locator miss: DRAM tag access,
        // with the data row opened in parallel on its own channel.
        let tag_start = access.now + self.wl_cycles;
        // Footnote-11 extension: a predicted miss launches its off-chip
        // fetch now, in parallel with the DRAM tag check.
        let speculative = match self.miss_predictor.as_ref() {
            Some(mp) if access.kind != AccessKind::Prefetch && !mp.predict_hit(access.addr) => {
                let (fetch_addr, fetch_bytes) = self.fetch_plan(access.addr);
                mem.main.set_class(TrafficClass::PredictorOverfetch);
                let comp = mem.main.read(fetch_addr, fetch_bytes, tag_start);
                self.stats.spec_fetches += 1;
                Some((comp, fetch_addr, fetch_bytes))
            }
            _ => None,
        };
        let span_tag = span::enter(SpanId::TagRead);
        let md_loc = self.metadata.metadata_location(set_idx, data_loc);
        let set_ways = self.sets[usize::try_from(set_idx).expect("set fits usize")]
            .state()
            .ways();
        // TDRAM-style substrates return tag+data in one burst: widen the
        // tag read by the candidate block so a read hit needs no second
        // column access (a miss pays the wasted wider burst).
        let fused = mem.fused_tag_data();
        let md_bytes = self.metadata.tag_read_bytes_for(set_ways)
            + if fused { self.geometry.small_block } else { 0 };
        mem.cache_dram.set_class(TrafficClass::MetadataRead);
        let md_comp = mem.cache_dram.access(Request {
            loc: md_loc,
            bytes: md_bytes,
            op: Op::Read,
            arrival: tag_start,
        });
        self.stats.md_accesses += 1;
        if md_comp.row_event == RowEvent::Hit {
            self.stats.md_row_hits += 1;
        }
        // Hold the tag read's timing partition; how it is charged depends
        // on the outcome (a speculative miss overlaps it with the fetch
        // and is sliced coarsely at the return site instead).
        let md_segs = anatomy::take_dram();
        let row_open = if self.metadata.placement() == MetadataPlacement::DedicatedBank {
            // Concurrent activation of the data row (different channel).
            mem.cache_dram.open_row_hint(data_loc, tag_start).row_open
        } else {
            // Co-located: the tag read already opened the data row.
            md_comp.done
        };
        let tags_checked = md_comp.done + self.tag_compare_cycles;
        span::add_cycles(SpanId::TagRead, tags_checked.saturating_sub(tag_start));
        drop(span_tag);

        // The tag read just decoded every SECDED-protected entry of this
        // set, so any ledgered metadata faults are detected now: corrected
        // in place if single-bit, or the affected way dropped if not.
        if !self.ledger.is_empty() {
            self.scrub_set(set_idx, md_comp.done, mem);
        }

        let hit_way = self.sets[usize::try_from(set_idx).expect("set fits usize")].lookup(tag, sub);

        if let Some(way) = hit_way {
            // --------------------------- cache hit after DRAM tag check
            let done = if fused && op == Op::Read {
                // The data block arrived in the fused tag burst; the hit
                // completes as soon as the tags are compared.
                if anatomy::active() {
                    anatomy::fused_saved(mem.cache_dram.column_cost(self.geometry.small_block));
                }
                tags_checked
            } else {
                let start = tags_checked.max(row_open);
                mem.cache_dram.set_class(TrafficClass::DataHit);
                let comp =
                    mem.cache_dram
                        .column_access(data_loc, self.geometry.small_block, op, start);
                self.stats.data_accesses += 1;
                if comp.row_event == RowEvent::Hit {
                    self.stats.data_row_hits += 1;
                }
                if anatomy::active() {
                    // Waiting for the parallel row activation to finish.
                    anatomy::add(Component::BankConflict, start.saturating_sub(tags_checked));
                    anatomy::charge_dram(Component::DataBurst);
                }
                comp.done
            };
            if anatomy::active() {
                anatomy::add(Component::Locator, self.wl_cycles);
                if let Some(s) = md_segs {
                    anatomy::charge_segments(s, Component::TagProbe);
                }
                anatomy::add(Component::TagProbe, self.tag_compare_cycles);
            }
            let set = &mut self.sets[usize::try_from(set_idx).expect("set fits usize")];
            set.touch(way, sub, access.is_write());
            if let Some(wl) = self.way_locator.as_mut() {
                wl.insert(access.addr, way.size, way.index);
            }
            self.stats.hits += 1;
            if let Some(mp) = self.miss_predictor.as_mut() {
                mp.update(access.addr, true);
            }
            // A speculative fetch for what turned out to be a hit is pure
            // wasted off-chip bandwidth.
            let mut offchip_bytes = 0u64;
            if let Some((_, _, fb)) = speculative {
                self.stats.offchip_fetched_bytes += u64::from(fb);
                self.stats.offchip_wasted_bytes += u64::from(fb);
                self.stats.spec_wasted += 1;
                offchip_bytes += u64::from(fb);
            }
            let small = way.size == BlockSize::Small;
            if small {
                self.stats.small_hits += 1;
                self.stats.small_block_accesses += 1;
            } else {
                self.stats.big_hits += 1;
            }
            self.stats.breakdown.sram += self.wl_cycles;
            self.stats.breakdown.dram_tag += tags_checked.saturating_sub(tag_start);
            self.stats.breakdown.dram_data += done.saturating_sub(tags_checked);
            self.stats.total_latency += done.saturating_sub(access.now);
            return AccessOutcome {
                complete: done,
                hit: true,
                offchip_bytes,
                small_block: small,
            };
        }

        // ------------------------------------------------------- miss
        self.stats.misses += 1;
        if let Some(mp) = self.miss_predictor.as_mut() {
            if access.kind != AccessKind::Prefetch {
                mp.update(access.addr, false);
            }
        }

        if access.kind == AccessKind::Prefetch && self.prefetch_bypass {
            // PREF_BYPASS: fetch around the cache without allocating.
            mem.main.set_class(TrafficClass::MainMemRefill);
            let comp = mem.main.read(
                self.amap.small_block_base(access.addr),
                self.geometry.small_block,
                tags_checked,
            );
            self.stats.prefetch_bypasses += 1;
            self.stats.offchip_fetched_bytes += u64::from(self.geometry.small_block);
            if anatomy::active() {
                let _ = anatomy::take_dram();
                anatomy::add(Component::Locator, self.wl_cycles);
                if let Some(s) = md_segs {
                    anatomy::charge_segments(s, Component::TagProbe);
                }
                anatomy::add(Component::TagProbe, self.tag_compare_cycles);
                anatomy::add(Component::OffChip, comp.done.saturating_sub(tags_checked));
            }
            self.stats.breakdown.sram += self.wl_cycles;
            self.stats.breakdown.dram_tag += tags_checked.saturating_sub(tag_start);
            self.stats.breakdown.offchip += comp.done.saturating_sub(tags_checked);
            self.stats.total_latency += comp.done.saturating_sub(access.now);
            return AccessOutcome {
                complete: comp.done,
                hit: false,
                offchip_bytes: u64::from(self.geometry.small_block),
                small_block: false,
            };
        }

        let offchip_before = self.stats.offchip_bytes();
        let spec_used = speculative.is_some();
        let (done, filled_size) =
            self.service_miss(access, set_idx, tag, sub, tags_checked, speculative, mem);
        let offchip_bytes = self.stats.offchip_bytes() - offchip_before;
        if anatomy::active() {
            // The fill's off-chip fetch left a note; the miss is charged
            // by explicit windows instead.
            let _ = anatomy::take_dram();
            anatomy::add(Component::Locator, self.wl_cycles);
            if spec_used {
                // The tag probe overlapped the speculative fetch; only
                // the probe time on the critical path counts.
                let boundary = done.min(tags_checked).max(tag_start);
                anatomy::add(Component::TagProbe, boundary - tag_start);
                anatomy::add(Component::OffChip, done.saturating_sub(boundary));
            } else {
                if let Some(s) = md_segs {
                    anatomy::charge_segments(s, Component::TagProbe);
                }
                anatomy::add(Component::TagProbe, self.tag_compare_cycles);
                anatomy::add(Component::OffChip, done.saturating_sub(tags_checked));
            }
        }
        let small = filled_size == BlockSize::Small;
        if small {
            self.stats.small_block_accesses += 1;
        }
        self.stats.breakdown.sram += self.wl_cycles;
        self.stats.breakdown.dram_tag += tags_checked.saturating_sub(tag_start);
        self.stats.breakdown.offchip += done.saturating_sub(tags_checked);
        self.stats.total_latency += done.saturating_sub(access.now);
        AccessOutcome {
            complete: done,
            hit: false,
            offchip_bytes,
            small_block: small,
        }
    }

    fn stats(&self) -> &SchemeStats {
        &self.stats
    }

    fn reset_stats(&mut self) {
        self.stats.reset();
        if let Some(wl) = self.way_locator.as_mut() {
            wl.reset_stats();
        }
        // Epoch baselines reference counters that were just cleared.
        self.epoch_under_used = 0;
        self.epoch_well_used = 0;
        self.epoch_promotions_base = self.predictor.promotions();
        self.epoch_small_fills_base = 0;
    }

    fn finalize(&mut self) {
        // Fetched-but-never-referenced bytes of blocks still resident
        // count as waste, exactly like evictions.
        let subs = self.geometry.sub_blocks();
        let small = u64::from(self.geometry.small_block);
        let mut wasted = 0u64;
        for set in &self.sets {
            for v in set.residents() {
                wasted += u64::from(v.unreferenced_sub_blocks(subs)) * small;
            }
        }
        self.stats.offchip_wasted_bytes += wasted;
    }

    fn fault_target(&mut self) -> Option<&mut dyn crate::FaultTarget> {
        Some(self)
    }

    fn save_state(&self, w: &mut bimodal_ckpt::SnapshotWriter) {
        use bimodal_ckpt::Snapshot;
        w.u8(1); // stateful marker
        self.sets.save(w);
        match &self.way_locator {
            Some(wl) => {
                w.u8(1);
                wl.save_state(w);
            }
            None => w.u8(0),
        }
        self.predictor.save_state(w);
        self.tracker.save_state(w);
        self.global.save_state(w);
        match &self.miss_predictor {
            Some(mp) => {
                w.u8(1);
                mp.save_state(w);
            }
            None => w.u8(0),
        }
        w.u64(self.epoch_under_used);
        w.u64(self.epoch_well_used);
        w.u64(self.epoch_promotions_base);
        w.u64(self.epoch_small_fills_base);
        self.ledger.save(w);
        let s = self.rng.state();
        for v in s {
            w.u64(v);
        }
        self.stats.save(w);
    }

    fn restore_state(
        &mut self,
        r: &mut bimodal_ckpt::SnapshotReader<'_>,
    ) -> Result<(), bimodal_ckpt::CkptError> {
        use bimodal_ckpt::Snapshot;
        match r.u8()? {
            1 => {}
            b => {
                return Err(r.corrupt(format!(
                    "bi-modal cache expects stateful marker 1, found {b}"
                )))
            }
        }
        let sets: Vec<BiModalSet> = Snapshot::load(r)?;
        if sets.len() != self.sets.len() {
            return Err(r.corrupt(format!(
                "checkpoint has {} sets, geometry expects {}",
                sets.len(),
                self.sets.len()
            )));
        }
        let has_locator = r.u8()? == 1;
        if has_locator != self.way_locator.is_some() {
            return Err(bimodal_ckpt::CkptError::Mismatch {
                detail: "checkpoint and configuration disagree on the way locator".into(),
            });
        }
        self.sets = sets;
        if let Some(wl) = &mut self.way_locator {
            wl.load_state(r)?;
        }
        self.predictor.load_state(r)?;
        self.tracker.load_state(r)?;
        self.global.load_state(r)?;
        let has_mp = r.u8()? == 1;
        if has_mp != self.miss_predictor.is_some() {
            return Err(bimodal_ckpt::CkptError::Mismatch {
                detail: "checkpoint and configuration disagree on the miss predictor".into(),
            });
        }
        if let Some(mp) = &mut self.miss_predictor {
            mp.load_state(r)?;
        }
        self.epoch_under_used = r.u64()?;
        self.epoch_well_used = r.u64()?;
        self.epoch_promotions_base = r.u64()?;
        self.epoch_small_fills_base = r.u64()?;
        self.ledger = Snapshot::load(r)?;
        let rng_state = [r.u64()?, r.u64()?, r.u64()?, r.u64()?];
        if rng_state == [0; 4] {
            return Err(r.corrupt("all-zero replacement RNG state"));
        }
        self.rng = bimodal_prng::SmallRng::from_state(rng_state);
        self.stats = Snapshot::load(r)?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bimodal_dram::MemorySystem;

    fn small_cache() -> (BiModalCache, MemorySystem) {
        // 1 MB cache keeps tests fast; epoch shortened so adaptation fires.
        let config = BiModalConfig::for_cache_mb(1).with_epoch(500);
        (BiModalCache::new(config), MemorySystem::quad_core())
    }

    #[test]
    fn checkpoint_round_trip_resumes_bit_identically() {
        let drive = |c: &mut BiModalCache, mem: &mut MemorySystem, base: u64| {
            let mut now = base;
            for i in 0..400u64 {
                // Mixed strides so both granularities and evictions occur.
                let addr = (i * 7919 % 97) * 512 + (i % 8) * 64;
                let out = c.access(CacheAccess::read(addr, now), mem);
                now = out.complete + 10;
            }
            now
        };

        let (mut a, mut mem_a) = small_cache();
        drive(&mut a, &mut mem_a, 0);

        let mut w = bimodal_ckpt::SnapshotWriter::new();
        DramCacheScheme::save_state(&a, &mut w);
        let bytes = w.into_bytes();

        let (mut b, mut mem_b) = small_cache();
        let mut r = bimodal_ckpt::SnapshotReader::new(&bytes, "scheme");
        b.restore_state(&mut r).expect("restore");
        assert!(r.is_exhausted());
        let mut wm = bimodal_ckpt::SnapshotWriter::new();
        mem_a.save_state(&mut wm);
        let mem_bytes = wm.into_bytes();
        let mut rm = bimodal_ckpt::SnapshotReader::new(&mem_bytes, "mem");
        mem_b.load_state(&mut rm).expect("mem restore");

        drive(&mut a, &mut mem_a, 4_000_000);
        drive(&mut b, &mut mem_b, 4_000_000);
        assert_eq!(a.stats(), b.stats());
        use crate::FaultTarget;
        assert_eq!(a.contents_digest(), b.contents_digest());
    }

    #[test]
    fn restore_rejects_stateless_marker() {
        let (mut c, _) = small_cache();
        let mut w = bimodal_ckpt::SnapshotWriter::new();
        w.u8(0);
        let bytes = w.into_bytes();
        let mut r = bimodal_ckpt::SnapshotReader::new(&bytes, "scheme");
        assert!(c.restore_state(&mut r).is_err());
    }

    #[test]
    fn cold_miss_then_hit() {
        let (mut c, mut mem) = small_cache();
        let a = c.access(CacheAccess::read(0x10000, 0), &mut mem);
        assert!(!a.hit);
        assert!(a.offchip_bytes >= 512, "big fill fetches the whole block");
        let b = c.access(CacheAccess::read(0x10000, a.complete), &mut mem);
        assert!(b.hit);
        assert_eq!(b.offchip_bytes, 0);
    }

    #[test]
    fn spatial_neighbours_hit_after_big_fill() {
        let (mut c, mut mem) = small_cache();
        let a = c.access(CacheAccess::read(0x10000, 0), &mut mem);
        for i in 1..8u64 {
            let r = c.access(CacheAccess::read(0x10000 + i * 64, a.complete), &mut mem);
            assert!(r.hit, "sub-block {i} should hit in the big block");
        }
    }

    #[test]
    fn way_locator_hit_is_faster_than_tag_path() {
        let (mut c, mut mem) = small_cache();
        let a = c.access(CacheAccess::read(0x20000, 0), &mut mem);
        // First hit goes through the locator (inserted on fill).
        let b = c.access(CacheAccess::read(0x20000, a.complete + 10_000), &mut mem);
        assert!(b.hit);
        assert!(c.stats().locator_hits >= 1);
    }

    #[test]
    fn writes_mark_dirty_and_cause_writebacks() {
        let (mut c, mut mem) = small_cache();
        let mut now = 0;
        // Dirty a line, then flood the set with conflicting tags to force
        // the dirty block out.
        let w = c.access(CacheAccess::write(0x4000, now), &mut mem);
        now = w.complete;
        let set_stride = 1u64 << (c.geometry.offset_bits() + c.geometry.set_index_bits());
        for k in 1..=8u64 {
            let r = c.access(CacheAccess::read(0x4000 + k * set_stride, now), &mut mem);
            now = r.complete;
        }
        assert!(c.stats().writebacks >= 1, "dirty data must be written back");
        assert!(c.stats().offchip_writeback_bytes >= 64);
    }

    #[test]
    fn locator_never_points_at_evicted_blocks() {
        let (mut c, mut mem) = small_cache();
        let mut now = 0;
        let set_stride = 1u64 << (c.geometry.offset_bits() + c.geometry.set_index_bits());
        // Cycle many conflicting blocks through one set; debug_assert in
        // the locator-hit path catches stale entries.
        for round in 0..6u64 {
            for k in 0..6u64 {
                let addr = 0x8000 + k * set_stride;
                let r = c.access(CacheAccess::read(addr + (round % 8) * 64, now), &mut mem);
                now = r.complete;
            }
        }
        assert!(c.stats().accesses == 36);
        assert_eq!(
            c.stats().locator_heals,
            0,
            "an unfaulted run never trips the hint verifier"
        );
    }

    #[test]
    fn sparse_traffic_trains_predictor_to_small() {
        let config = BiModalConfig::for_cache_mb(1).with_epoch(32);
        let mut c = BiModalCache::new(config);
        let mut mem = MemorySystem::quad_core();
        let mut now = 0;
        // Cycle 12 conflicting single-line (utilization 1/8) regions
        // through the sampled set 0: every eviction trains the predictor
        // toward "small", and the global controller follows the demand.
        let set_stride = 1u64 << (c.geometry.offset_bits() + c.geometry.set_index_bits());
        for round in 0..20u64 {
            for k in 0..12u64 {
                let addr = k * set_stride; // all map to set 0
                let _ = round;
                let r = c.access(CacheAccess::read(addr, now), &mut mem);
                now = r.complete;
            }
        }
        let (_, small_updates) = c.predictor().update_counts();
        assert!(
            small_updates > 0,
            "sampled sparse evictions must train the predictor"
        );
        assert!(c.stats().fills_small > 0, "later fills should be small");
    }

    #[test]
    fn fixed_big_never_fills_small() {
        let config = BiModalConfig::for_cache_mb(1).fixed_big_blocks();
        let mut c = BiModalCache::new(config);
        let mut mem = MemorySystem::quad_core();
        let mut now = 0;
        for k in 0..200u64 {
            let r = c.access(CacheAccess::read(k * 4096 + 64, now), &mut mem);
            now = r.complete;
        }
        assert_eq!(c.stats().fills_small, 0);
        assert_eq!(c.stats().small_block_accesses, 0);
        assert_eq!(c.name(), "Fixed512");
    }

    #[test]
    fn bimodal_only_has_no_locator() {
        let config = BiModalConfig::for_cache_mb(1).bimodal_only();
        let c = BiModalCache::new(config);
        assert!(c.way_locator().is_none());
        assert_eq!(c.name(), "BiModal-Only");
    }

    #[test]
    fn wasted_bandwidth_is_counted_for_unused_sub_blocks() {
        let config = BiModalConfig::for_cache_mb(1).fixed_big_blocks();
        let mut c = BiModalCache::new(config);
        let mut mem = MemorySystem::quad_core();
        // One access per big region: 7 of 8 sub-blocks wasted.
        let mut now = 0;
        for k in 0..50u64 {
            let r = c.access(CacheAccess::read(k * 512, now), &mut mem);
            now = r.complete;
        }
        c.finalize();
        let s = c.stats();
        assert_eq!(s.offchip_wasted_bytes, 50 * 7 * 64);
    }

    #[test]
    fn prefetch_bypass_does_not_allocate() {
        let config = BiModalConfig::for_cache_mb(1).with_prefetch_bypass(true);
        let mut c = BiModalCache::new(config);
        let mut mem = MemorySystem::quad_core();
        let p = c.access(CacheAccess::prefetch(0x7000, 0), &mut mem);
        assert!(!p.hit);
        assert_eq!(c.stats().prefetch_bypasses, 1);
        // Still a miss afterwards: nothing was allocated.
        let r = c.access(CacheAccess::read(0x7000, p.complete), &mut mem);
        assert!(!r.hit);
    }

    #[test]
    fn metadata_rbh_is_higher_with_dedicated_bank() {
        let run = |colocated: bool| {
            let mut config = BiModalConfig::for_cache_mb(1).bimodal_only();
            if colocated {
                config = config.with_colocated_metadata();
            }
            let mut c = BiModalCache::new(config);
            let mut mem = MemorySystem::quad_core();
            let mut now = 0;
            // A scattered read stream: every access misses the (absent)
            // way locator, so every access reads metadata.
            let mut x = 1u64;
            for _ in 0..3000 {
                x = x.wrapping_mul(6_364_136_223_846_793_005).wrapping_add(1);
                let addr = (x >> 16) % (64 << 20);
                let r = c.access(CacheAccess::read(addr, now), &mut mem);
                now = r.complete;
            }
            c.stats().metadata_rbh()
        };
        let dedicated = run(false);
        let colocated = run(true);
        assert!(
            dedicated > colocated,
            "dedicated metadata bank must raise metadata RBH: {dedicated} vs {colocated}"
        );
    }

    #[test]
    fn stats_reset_clears_counters_but_keeps_contents() {
        let (mut c, mut mem) = small_cache();
        let a = c.access(CacheAccess::read(0x3000, 0), &mut mem);
        c.reset_stats();
        assert_eq!(c.stats().accesses, 0);
        let b = c.access(CacheAccess::read(0x3000, a.complete), &mut mem);
        assert!(b.hit, "contents survive a stats reset");
    }

    #[test]
    fn miss_predictor_overlaps_fetch_with_tag_check() {
        let run = |mp: bool| {
            let config = BiModalConfig::for_cache_mb(1)
                .bimodal_only() // no way locator: every access checks tags
                .with_miss_predictor(mp);
            let mut c = BiModalCache::new(config);
            let mut mem = MemorySystem::quad_core();
            let mut now = 0;
            let mut lat_sum = 0u64;
            // A scan stream: every 512 B block misses, so each 4 KB
            // predictor region sees several misses and trains quickly.
            for k in 0..300u64 {
                let r = c.access(CacheAccess::read(0x10_0000 + k * 512, now), &mut mem);
                lat_sum += r.complete - now;
                now = r.complete + 50;
            }
            (lat_sum, c.stats().spec_fetches)
        };
        let (base_lat, base_spec) = run(false);
        let (mp_lat, mp_spec) = run(true);
        assert_eq!(base_spec, 0);
        assert!(
            mp_spec > 100,
            "predictor should speculate on the miss stream"
        );
        assert!(
            mp_lat < base_lat,
            "overlapped fetches must cut total miss latency: {mp_lat} vs {base_lat}"
        );
    }

    #[test]
    fn miss_predictor_wastes_fetches_on_hits() {
        let config = BiModalConfig::for_cache_mb(1)
            .bimodal_only()
            .with_miss_predictor(true);
        let mut c = BiModalCache::new(config);
        let mut mem = MemorySystem::quad_core();
        let mut now = 0;
        // Train the region to predict miss, then hit in it repeatedly.
        for k in 0..8u64 {
            let r = c.access(CacheAccess::read(k * 512, now), &mut mem);
            now = r.complete + 10;
        }
        let wasted_before = c.stats().spec_wasted;
        for _ in 0..4 {
            let r = c.access(CacheAccess::read(0, now), &mut mem);
            assert!(r.hit);
            now = r.complete + 10;
        }
        assert!(
            c.stats().spec_wasted > wasted_before,
            "hit under a miss prediction wastes a fetch"
        );
        assert_eq!(c.name(), "BiModal-Only+MP");
    }

    #[test]
    fn adaptive_threshold_rises_under_sustained_waste() {
        // A stream touching exactly 4 of 8 sub-blocks per region, with
        // T = 3: every region classifies big-worthy yet wastes half its
        // fetch. The adaptive controller should push T upward.
        let config = BiModalConfig::for_cache_mb(1)
            .with_threshold(3)
            .with_epoch(2_000)
            .with_adaptive_threshold(true);
        let mut c = BiModalCache::new(config);
        let mut mem = MemorySystem::quad_core();
        let mut now = 0;
        let mut region = 0u64;
        for _ in 0..8_000u64 {
            // Touch one line of a fresh region (utilization 1/8 at
            // eviction) — heavy under-use.
            let r = c.access(CacheAccess::read(region * 512, now), &mut mem);
            now = r.complete + 20;
            region = (region + 1) % 4_096; // cycle so evictions occur
        }
        assert!(c.threshold() > 3, "T should rise, got {}", c.threshold());
    }

    #[test]
    fn adaptive_threshold_stays_for_well_used_blocks() {
        let config = BiModalConfig::for_cache_mb(1)
            .with_epoch(2_000)
            .with_adaptive_threshold(true);
        let mut c = BiModalCache::new(config);
        let mut mem = MemorySystem::quad_core();
        let mut now = 0;
        // Dense scan: every region fully used.
        for k in 0..16_000u64 {
            let r = c.access(CacheAccess::read(k * 64, now), &mut mem);
            now = r.complete + 5;
        }
        assert!(
            c.threshold() <= 5,
            "well-used traffic must not raise T, got {}",
            c.threshold()
        );
    }

    #[test]
    fn corrupted_locator_entry_heals_without_losing_the_block() {
        let (mut c, mut mem) = small_cache();
        let a = c.access(CacheAccess::read(0x20000, 0), &mut mem);
        let mut rng = SmallRng::seed_from_u64(9);
        assert!(c.inject_locator_flip(&mut rng), "one entry is resident");
        let b = c.access(CacheAccess::read(0x20000, a.complete + 1_000), &mut mem);
        assert!(b.hit, "a corrupted hint costs latency, never the block");
        assert_eq!(c.stats().locator_heals, 1);
        // The tag probe re-inserted a clean entry: the next access is a
        // plain locator hit again.
        let d = c.access(CacheAccess::read(0x20000, b.complete + 1_000), &mut mem);
        assert!(d.hit);
        assert_eq!(c.stats().locator_heals, 1);
    }

    #[test]
    fn ecc_ledgers_flips_and_scrubs_on_the_next_tag_probe() {
        let config = BiModalConfig::for_cache_mb(1)
            .with_epoch(500)
            .with_metadata_ecc(true);
        let mut c = BiModalCache::new(config);
        let mut mem = MemorySystem::quad_core();
        let a = c.access(CacheAccess::read(0x30000, 0), &mut mem);
        let digest = c.contents_digest();
        let mut rng = SmallRng::seed_from_u64(11);
        let f = c
            .inject_metadata_flip(&mut rng, false)
            .expect("a block is resident");
        assert!(!f.applied, "SECDED holds the flip in the ledger");
        assert_eq!(digest, c.contents_digest(), "tags were never disturbed");
        // A tag probe of the same set (here: a conflicting miss) decodes
        // the protected entries and corrects the flip.
        let set_stride = 1u64 << (c.geometry.offset_bits() + c.geometry.set_index_bits());
        let _ = c.access(
            CacheAccess::read(0x30000 + set_stride, a.complete),
            &mut mem,
        );
        assert_eq!(c.stats().ecc_corrected, 1);
        assert_eq!(c.stats().ecc_detected_uncorrected, 0);
    }

    #[test]
    fn multi_bit_flip_is_detected_and_drops_the_way() {
        let config = BiModalConfig::for_cache_mb(1)
            .with_epoch(500)
            .with_metadata_ecc(true);
        let mut c = BiModalCache::new(config);
        let mut mem = MemorySystem::quad_core();
        let a = c.access(CacheAccess::read(0x40000, 0), &mut mem);
        let mut rng = SmallRng::seed_from_u64(13);
        let f = c
            .inject_metadata_flip(&mut rng, true)
            .expect("a block is resident");
        assert!(f.multi_bit && !f.applied);
        let set_stride = 1u64 << (c.geometry.offset_bits() + c.geometry.set_index_bits());
        let b = c.access(
            CacheAccess::read(0x40000 + set_stride, a.complete),
            &mut mem,
        );
        assert_eq!(c.stats().ecc_detected_uncorrected, 1);
        // The entry was unreadable, so its way was dropped: the original
        // block is gone, detectedly (not silently).
        let d = c.access(CacheAccess::read(0x40000, b.complete), &mut mem);
        assert!(!d.hit);
    }

    #[test]
    fn without_ecc_a_flip_corrupts_the_tag_for_real() {
        let (mut c, mut mem) = small_cache();
        let a = c.access(CacheAccess::read(0x50000, 0), &mut mem);
        let digest = c.contents_digest();
        let mut rng = SmallRng::seed_from_u64(17);
        let f = c
            .inject_metadata_flip(&mut rng, false)
            .expect("a block is resident");
        assert!(f.applied, "no ECC: the stored tag really changes");
        assert_ne!(f.orig_tag, f.new_tag);
        assert_ne!(digest, c.contents_digest());
        // The stale locator hint is caught by the verifier (heal), but the
        // block itself is lost — the silent-corruption baseline.
        let b = c.access(CacheAccess::read(0x50000, a.complete), &mut mem);
        assert!(!b.hit);
        assert_eq!(c.stats().locator_heals, 1);
        assert_eq!(c.stats().ecc_corrected, 0);
    }

    #[test]
    fn flush_faults_accounts_for_undetected_ledger_entries() {
        let config = BiModalConfig::for_cache_mb(1)
            .with_epoch(500)
            .with_metadata_ecc(true);
        let mut c = BiModalCache::new(config);
        let mut mem = MemorySystem::quad_core();
        let _ = c.access(CacheAccess::read(0x60000, 0), &mut mem);
        let mut rng = SmallRng::seed_from_u64(19);
        c.inject_metadata_flip(&mut rng, false).expect("resident");
        c.inject_metadata_flip(&mut rng, true).expect("resident");
        let (corrected, uncorrected) = c.flush_faults();
        assert_eq!((corrected, uncorrected), (1, 1));
        assert_eq!(c.flush_faults(), (0, 0), "ledger drained");
    }

    #[test]
    fn pick_victim_honours_protection() {
        let mut rng = SmallRng::seed_from_u64(7);
        // Only way 2 unprotected (bits 0, 1 and 3 set).
        let protected = 0b1011u64;
        for _ in 0..20 {
            assert_eq!(BiModalCache::pick_victim(&mut rng, 4, protected), 2);
        }
        // All protected: any way may be chosen.
        let v = BiModalCache::pick_victim(&mut rng, 2, 0b11);
        assert!(v < 2);
    }

    #[test]
    fn pick_victim_mask_matches_free_list_semantics() {
        // The mask-based selector must draw the same victims the old
        // Vec<bool> free-list code drew: k-th unprotected way in
        // ascending order, via one usize draw over the free count.
        for seed in 0..16u64 {
            for (n, protected) in [(4u8, 0b0101u64), (6, 0b110010), (18, 0b10_1010_1010_1010)] {
                let mut a = SmallRng::seed_from_u64(seed);
                let mut b = SmallRng::seed_from_u64(seed);
                let free: Vec<u8> = (0..n).filter(|&i| protected & (1 << i) == 0).collect();
                let expect = free[b.gen_range(0..free.len())];
                assert_eq!(BiModalCache::pick_victim(&mut a, n, protected), expect);
                // Both paths must leave the RNG in the same state.
                assert_eq!(a.next_u64(), b.next_u64());
            }
        }
    }
}
