//! Shadow-model invariant checking.
//!
//! A fault campaign needs a referee that does not share the timed
//! model's corrupted state. The checker runs the untimed
//! [`bimodal_core::FunctionalCache`] over the same demand stream and
//! enforces one sound invariant plus one drift statistic:
//!
//! * **No impossible hits.** The timed cache fills only from demanded
//!   allocation-unit regions (campaigns run without prefetching), so a
//!   reported hit on a region the stream never touched can only come
//!   from a corrupted tag aliasing another block — silent corruption
//!   made visible. The check is one-directional and therefore sound:
//!   the region set over-approximates residency, never
//!   under-approximates it. The region size is the scheme's allocation
//!   unit (512 B Bi-Modal big blocks by default; see
//!   [`ShadowChecker::with_model`]).
//! * **Hit-rate drift.** The functional model's hit rate is compared at
//!   a configurable cadence; the maximum divergence is reported (not
//!   asserted — the models differ legitimately in replacement and
//!   granularity).

use std::collections::HashSet;

use bimodal_core::{FunctionalCache, FunctionalConfig};

/// Big-block granularity of the Bi-Modal cache; the default region
/// tracking uses it because one demand fill can bring in the whole
/// 512 B block.
const BIMODAL_REGION_BITS: u32 = 9;

/// Untimed referee for a fault campaign.
#[derive(Debug)]
pub struct ShadowChecker {
    functional: FunctionalCache,
    /// Allocation-unit granularity (log2 bytes) of region tracking.
    region_bits: u32,
    /// Regions the demand stream has touched (warm-up included).
    seen: HashSet<u64>,
    /// Compare hit rates every this many accesses.
    cadence: u64,
    accesses: u64,
    timed_hits: u64,
    shadow_hits: u64,
    violations: u64,
    checks: u64,
    max_drift: f64,
}

impl ShadowChecker {
    /// A checker for a Bi-Modal cache of `cache_bytes`, comparing hit
    /// rates every `cadence` accesses (`cadence` is clamped to at
    /// least 1).
    #[must_use]
    pub fn new(cache_bytes: u64, cadence: u64) -> Self {
        ShadowChecker::with_model(
            FunctionalConfig::new(cache_bytes, 512, 16),
            BIMODAL_REGION_BITS,
            cadence,
        )
    }

    /// A checker over an arbitrary shadow geometry — used by campaigns
    /// against the baseline organizations, whose allocation units differ
    /// (64 B line-grain for Alloy/Loh-Hill/ATCache, 2 KB page-grain for
    /// the Footprint Cache). `region_bits` sets the granularity of the
    /// impossible-hit invariant.
    #[must_use]
    pub fn with_model(config: FunctionalConfig, region_bits: u32, cadence: u64) -> Self {
        ShadowChecker {
            functional: FunctionalCache::new(config),
            region_bits,
            seen: HashSet::new(),
            cadence: cadence.max(1),
            accesses: 0,
            timed_hits: 0,
            shadow_hits: 0,
            violations: 0,
            checks: 0,
            max_drift: 0.0,
        }
    }

    /// Feeds one demand access and the timed model's verdict. Warm-up
    /// accesses must be fed too (with `measured = false`): they populate
    /// the cache, so the region set has to cover them.
    pub fn observe(&mut self, addr: u64, timed_hit: bool, measured: bool) {
        let region = addr >> self.region_bits;
        if measured && timed_hit && !self.seen.contains(&region) {
            self.violations += 1;
        }
        self.seen.insert(region);
        let shadow_hit = self.functional.access(addr);
        if measured {
            self.accesses += 1;
            self.timed_hits += u64::from(timed_hit);
            self.shadow_hits += u64::from(shadow_hit);
            if self.accesses.is_multiple_of(self.cadence) {
                self.checks += 1;
                let n = self.accesses as f64;
                let drift = (self.timed_hits as f64 / n - self.shadow_hits as f64 / n).abs();
                self.max_drift = self.max_drift.max(drift);
            }
        }
    }

    /// Impossible hits observed — each one is a silent corruption the
    /// workload tripped over.
    #[must_use]
    pub fn violations(&self) -> u64 {
        self.violations
    }

    /// Number of cadence comparisons performed.
    #[must_use]
    pub fn checks(&self) -> u64 {
        self.checks
    }

    /// Largest timed-vs-shadow hit-rate divergence seen at any check.
    #[must_use]
    pub fn max_drift(&self) -> f64 {
        self.max_drift
    }

    /// The shadow model's own hit rate over the measured stream.
    #[must_use]
    pub fn shadow_hit_rate(&self) -> f64 {
        if self.accesses == 0 {
            0.0
        } else {
            self.shadow_hits as f64 / self.accesses as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn honest_hits_raise_no_violations() {
        let mut s = ShadowChecker::new(1 << 20, 10);
        // Warm-up touch, then a measured hit on the same region.
        s.observe(0x1234, false, false);
        s.observe(0x1240, true, true);
        assert_eq!(s.violations(), 0);
        assert_eq!(s.shadow_hit_rate(), 1.0, "same 512 B block in shadow too");
    }

    #[test]
    fn a_hit_on_an_untouched_region_is_flagged() {
        let mut s = ShadowChecker::new(1 << 20, 10);
        s.observe(0x0, false, true);
        s.observe(0x80_0000, true, true); // never seen: impossible hit
        assert_eq!(s.violations(), 1);
        // Once seen, a repeat hit is legitimate.
        s.observe(0x80_0000, true, true);
        assert_eq!(s.violations(), 1);
    }

    #[test]
    fn line_grain_model_distinguishes_neighbouring_lines() {
        // At 64 B grain, a hit on the neighbouring line of a touched
        // 512 B block is impossible; the default 512 B grain forgives it.
        let mut fine = ShadowChecker::with_model(FunctionalConfig::new(1 << 20, 64, 1), 6, 10);
        fine.observe(0x1000, false, false);
        fine.observe(0x1040, true, true);
        assert_eq!(fine.violations(), 1);
        let mut coarse = ShadowChecker::new(1 << 20, 10);
        coarse.observe(0x1000, false, false);
        coarse.observe(0x1040, true, true);
        assert_eq!(coarse.violations(), 0);
    }

    #[test]
    fn cadence_tracks_drift() {
        let mut s = ShadowChecker::new(1 << 20, 2);
        for i in 0..10u64 {
            // Timed model claims all hits; shadow misses all (cold,
            // distinct blocks) — drift approaches 1.
            s.observe(i * 4096, true, i > 0);
        }
        assert!(s.checks() >= 4);
        assert!(s.max_drift() > 0.5);
        // All flagged: distinct regions were never pre-touched.
        assert_eq!(s.violations(), 9);
    }
}
