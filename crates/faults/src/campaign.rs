//! Seeded fault campaigns: a clean reference run, a faulted run under
//! the injector, and a report classifying every injected corruption.

use bimodal_core::{AccessOutcome, DramCacheScheme};
use bimodal_dram::MemorySystem;
use bimodal_obs::{Json, Observer};
use bimodal_sim::{
    AccessContext, AnttReport, Engine, RunHook, RunReport, SchemeKind, Simulation, StallDiagnostic,
    SystemConfig, WatchdogConfig,
};
use bimodal_workloads::WorkloadMix;

use crate::injector::{FaultInjector, FaultRates, InjectionCounts, InjectionRecord};
use crate::shadow::ShadowChecker;

/// Errors from a campaign request.
#[derive(Debug, Clone, PartialEq)]
pub enum CampaignError {
    /// The campaign parameters are unusable.
    Invalid(String),
    /// The forward-progress watchdog aborted one of the runs.
    Stalled(Box<StallDiagnostic>),
}

impl std::fmt::Display for CampaignError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CampaignError::Invalid(msg) => write!(f, "invalid campaign: {msg}"),
            CampaignError::Stalled(d) => write!(f, "{d}"),
        }
    }
}

impl std::error::Error for CampaignError {}

impl From<Box<StallDiagnostic>> for CampaignError {
    fn from(d: Box<StallDiagnostic>) -> Self {
        CampaignError::Stalled(d)
    }
}

/// One campaign: scheme, workload, fault rates, and the resilience
/// mechanisms to arm.
#[derive(Debug, Clone)]
pub struct CampaignConfig {
    /// The machine.
    pub system: SystemConfig,
    /// The organization under test: any of the Bi-Modal variants or the
    /// baseline organizations — every scheme exposes its own fault
    /// surface (metadata/tag store, locator hints, predictor state).
    pub kind: SchemeKind,
    /// The workload mix.
    pub mix: WorkloadMix,
    /// Measured accesses per core.
    pub accesses_per_core: u64,
    /// Campaign seed: drives the injection schedule only (the workload
    /// keeps the system's own seed).
    pub seed: u64,
    /// Per-access injection probabilities.
    pub rates: FaultRates,
    /// Restrict injection to this global-sequence window.
    pub window: Option<(u64, u64)>,
    /// Protect metadata entries with SECDED ECC (wider entries, wider
    /// tag reads, but every ledgered flip is detected).
    pub ecc: bool,
    /// Shadow-model comparison cadence in accesses (0 disables the
    /// checker).
    pub shadow_cadence: u64,
    /// Forward-progress watchdog; campaigns arm a default one so a
    /// wedged faulted run reports instead of spinning.
    pub watchdog: Option<WatchdogConfig>,
    /// Also compute ANTT for the clean and faulted runs (adds one
    /// standalone run per core).
    pub antt: bool,
}

impl CampaignConfig {
    /// A campaign with no faults, shadow checking every 256 accesses, a
    /// default watchdog, and no ANTT runs.
    #[must_use]
    pub fn new(system: SystemConfig, kind: SchemeKind, mix: WorkloadMix) -> Self {
        let seed = system.seed;
        CampaignConfig {
            system,
            kind,
            mix,
            accesses_per_core: 1_000,
            seed,
            rates: FaultRates::default(),
            window: None,
            ecc: false,
            shadow_cadence: 256,
            watchdog: Some(WatchdogConfig::default()),
            antt: false,
        }
    }

    /// Sets the measured access count per core.
    #[must_use]
    pub fn with_accesses(mut self, n: u64) -> Self {
        self.accesses_per_core = n;
        self
    }

    /// Sets the injection seed.
    #[must_use]
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Sets the injection rates.
    #[must_use]
    pub fn with_rates(mut self, rates: FaultRates) -> Self {
        self.rates = rates;
        self
    }

    /// Restricts injection to `[start, end)` global sequence numbers.
    #[must_use]
    pub fn with_window(mut self, start: u64, end: u64) -> Self {
        self.window = Some((start, end));
        self
    }

    /// Enables or disables metadata ECC.
    #[must_use]
    pub fn with_ecc(mut self, ecc: bool) -> Self {
        self.ecc = ecc;
        self
    }

    /// Sets the shadow cadence (0 disables the checker).
    #[must_use]
    pub fn with_shadow_cadence(mut self, cadence: u64) -> Self {
        self.shadow_cadence = cadence;
        self
    }

    /// Overrides (or, with `None`, disarms) the watchdog.
    #[must_use]
    pub fn with_watchdog(mut self, watchdog: Option<WatchdogConfig>) -> Self {
        self.watchdog = watchdog;
        self
    }

    /// Enables the ANTT degradation measurement.
    #[must_use]
    pub fn with_antt(mut self, antt: bool) -> Self {
        self.antt = antt;
        self
    }

    /// Runs the campaign: one clean run, one faulted run (same scheme,
    /// same traces, same engine options), optional standalone runs for
    /// ANTT, and a final ledger flush classifying faults the workload
    /// never tripped over.
    ///
    /// `obs` records the faulted run (latency histograms, event trace
    /// with the fault lane, epoch series).
    ///
    /// # Errors
    ///
    /// [`CampaignError::Invalid`] for a zero access count;
    /// [`CampaignError::Stalled`] when the watchdog aborts a run.
    pub fn run(&self, obs: &mut Observer) -> Result<CampaignReport, CampaignError> {
        if self.accesses_per_core == 0 {
            return Err(CampaignError::Invalid(
                "accesses_per_core must be positive".into(),
            ));
        }
        let sim = Simulation::new(self.system.clone(), self.kind);
        let cores = self.mix.cores() as u64;
        let mut options = sim.engine_options(self.accesses_per_core);
        if let Some(wd) = self.watchdog {
            options = options.with_watchdog(wd);
        }
        let engine = Engine::new(options);

        // Clean reference run (same configuration, ECC included, so the
        // degradation numbers isolate the faults).
        let mut clean_shadow = self.shadow();
        let mut scheme = self.build_scheme(&sim, cores);
        let mut mem = self.system.build_memory();
        let mut hook = CampaignHook {
            injector: None,
            shadow: clean_shadow.as_mut(),
        };
        let clean = engine.try_run(
            scheme.as_mut(),
            &mut mem,
            sim.traces_for(&self.mix),
            &mut Observer::disabled(),
            &mut hook,
        )?;
        let clean_digest = digest(scheme.as_mut());

        // Faulted run.
        let mut injector = FaultInjector::new(self.seed, self.rates, self.window);
        let mut faulted_shadow = self.shadow();
        let mut scheme = self.build_scheme(&sim, cores);
        let mut mem = self.system.build_memory();
        let mut hook = CampaignHook {
            injector: Some(&mut injector),
            shadow: faulted_shadow.as_mut(),
        };
        let faulted = engine.try_run(
            scheme.as_mut(),
            &mut mem,
            sim.traces_for(&self.mix),
            obs,
            &mut hook,
        )?;
        // Ledgered flips the workload never tripped over: scrub them now
        // so every injected fault ends up classified.
        let (flushed_corrected, flushed_uncorrected) = scheme
            .fault_target()
            .map_or((0, 0), bimodal_core::FaultTarget::flush_faults);
        let faulted_digest = digest(scheme.as_mut());

        let (clean_antt, faulted_antt) = if self.antt {
            let standalone = self.standalone_cycles(&sim)?;
            let antt_of = |mp: &RunReport| {
                AnttReport::from_cycles(
                    self.mix.name(),
                    self.kind.name(),
                    &mp.core_cycles,
                    &standalone,
                )
                .antt()
            };
            (Some(antt_of(&clean)), Some(antt_of(&faulted)))
        } else {
            (None, None)
        };

        let counts = injector.counts();
        Ok(CampaignReport {
            scheme: self.kind.name().to_owned(),
            mix: self.mix.name().to_owned(),
            seed: self.seed,
            accesses_per_core: self.accesses_per_core,
            ecc: self.ecc,
            counts,
            schedule: injector.schedule().to_vec(),
            detected_corrected: faulted.scheme.ecc_corrected
                + faulted.scheme.locator_heals
                + flushed_corrected,
            detected_uncorrected: faulted.scheme.ecc_detected_uncorrected + flushed_uncorrected,
            silent_corruptions: counts.metadata_applied,
            shadow: match (clean_shadow, faulted_shadow) {
                (Some(c), Some(f)) => Some(ShadowOutcome {
                    clean_violations: c.violations(),
                    faulted_violations: f.violations(),
                    checks: f.checks(),
                    max_drift: f.max_drift(),
                    shadow_hit_rate: f.shadow_hit_rate(),
                }),
                _ => None,
            },
            clean_digest,
            faulted_digest,
            clean,
            faulted,
            clean_antt,
            faulted_antt,
        })
    }

    fn shadow(&self) -> Option<ShadowChecker> {
        (self.shadow_cadence > 0).then(|| {
            let (config, region_bits) = self.kind.shadow_model(self.system.cache_bytes());
            ShadowChecker::with_model(config, region_bits, self.shadow_cadence)
        })
    }

    fn build_scheme(&self, sim: &Simulation, cores: u64) -> Box<dyn DramCacheScheme> {
        self.kind.build_resilient(
            &self.system,
            Some(sim.adapt_epoch(self.accesses_per_core, cores)),
            self.ecc,
        )
    }

    /// One clean single-core run per program, for the ANTT denominators.
    fn standalone_cycles(&self, sim: &Simulation) -> Result<Vec<u64>, CampaignError> {
        let mut options = sim.engine_options(self.accesses_per_core);
        if let Some(wd) = self.watchdog {
            options = options.with_watchdog(wd);
        }
        let engine = Engine::new(options);
        let mut cycles = Vec::with_capacity(self.mix.cores());
        for trace in sim.traces_for(&self.mix) {
            let mut scheme = self.build_scheme(sim, 1);
            let mut mem = self.system.build_memory();
            let report = engine.try_run(
                scheme.as_mut(),
                &mut mem,
                vec![trace],
                &mut Observer::disabled(),
                &mut CampaignHook {
                    injector: None,
                    shadow: None,
                },
            )?;
            cycles.push(report.core_cycles[0]);
        }
        Ok(cycles)
    }
}

/// FNV-1a digest of the cache's functional contents, `None` when the
/// scheme exposes no fault surface.
fn digest(scheme: &mut dyn DramCacheScheme) -> Option<u64> {
    scheme.fault_target().map(|ft| ft.contents_digest())
}

/// The engine hook wiring the injector (before each access) and the
/// shadow checker (after each outcome) into a run.
struct CampaignHook<'a> {
    injector: Option<&'a mut FaultInjector>,
    shadow: Option<&'a mut ShadowChecker>,
}

impl RunHook for CampaignHook<'_> {
    fn on_access(
        &mut self,
        ctx: AccessContext,
        scheme: &mut dyn DramCacheScheme,
        mem: &mut MemorySystem,
        obs: &mut Observer,
    ) {
        if let Some(inj) = self.injector.as_deref_mut() {
            inj.maybe_inject(ctx, scheme, mem, obs);
        }
    }

    fn on_outcome(&mut self, ctx: AccessContext, outcome: &AccessOutcome, _obs: &mut Observer) {
        if let Some(sh) = self.shadow.as_deref_mut() {
            sh.observe(ctx.addr, outcome.hit, ctx.warmed_up);
        }
    }
}

/// Shadow-checker outcome for the report.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ShadowOutcome {
    /// Impossible hits in the clean run (must be zero — anything else is
    /// a checker or model bug, not a fault).
    pub clean_violations: u64,
    /// Impossible hits in the faulted run: silent corruptions the
    /// workload tripped over.
    pub faulted_violations: u64,
    /// Cadence comparisons performed on the faulted run.
    pub checks: u64,
    /// Largest timed-vs-shadow hit-rate divergence at any check.
    pub max_drift: f64,
    /// The shadow model's hit rate over the faulted measured stream.
    pub shadow_hit_rate: f64,
}

/// Everything a campaign measured.
#[derive(Debug, Clone, PartialEq)]
pub struct CampaignReport {
    /// Scheme name.
    pub scheme: String,
    /// Mix name.
    pub mix: String,
    /// Injection seed.
    pub seed: u64,
    /// Measured accesses per core.
    pub accesses_per_core: u64,
    /// Whether metadata ECC was armed.
    pub ecc: bool,
    /// Landed injections by kind.
    pub counts: InjectionCounts,
    /// Every injection attempt, in issue order.
    pub schedule: Vec<InjectionRecord>,
    /// Corruptions detected and repaired: ECC single-bit corrections
    /// plus way-locator self-heals (including the end-of-run ledger
    /// flush).
    pub detected_corrected: u64,
    /// Corruptions detected but not correctable (multi-bit ECC hits;
    /// the way is dropped, dirty data written back).
    pub detected_uncorrected: u64,
    /// Corruptions no mechanism saw: metadata flips applied raw because
    /// ECC was off. Structurally zero when ECC is armed.
    pub silent_corruptions: u64,
    /// Shadow-checker outcome, when the checker ran.
    pub shadow: Option<ShadowOutcome>,
    /// Functional-contents digest after the clean run.
    pub clean_digest: Option<u64>,
    /// Functional-contents digest after the faulted run (post-flush).
    pub faulted_digest: Option<u64>,
    /// The clean run's full report.
    pub clean: RunReport,
    /// The faulted run's full report.
    pub faulted: RunReport,
    /// Clean-run ANTT, when measured.
    pub clean_antt: Option<f64>,
    /// Faulted-run ANTT, when measured.
    pub faulted_antt: Option<f64>,
}

impl CampaignReport {
    /// Hit-rate lost to the faults (clean minus faulted).
    #[must_use]
    pub fn hit_rate_degradation(&self) -> f64 {
        self.clean.scheme.hit_rate() - self.faulted.scheme.hit_rate()
    }

    /// Average-latency cycles added by the faults (faulted minus clean).
    #[must_use]
    pub fn latency_degradation(&self) -> f64 {
        self.faulted.avg_latency() - self.clean.avg_latency()
    }

    /// ANTT added by the faults, when ANTT was measured.
    #[must_use]
    pub fn antt_degradation(&self) -> Option<f64> {
        Some(self.faulted_antt? - self.clean_antt?)
    }

    /// Serializes the campaign report as one JSON object.
    #[must_use]
    pub fn to_json(&self) -> Json {
        let mut injected = Json::object();
        injected
            .set("metadata", self.counts.metadata)
            .set("metadata_multi", self.counts.metadata_multi)
            .set("locator", self.counts.locator)
            .set("predictor", self.counts.predictor)
            .set("dram", self.counts.dram)
            .set("metadata_applied", self.counts.metadata_applied)
            .set("total", self.counts.total());
        let run = |r: &RunReport, antt: Option<f64>| {
            let mut o = Json::object();
            o.set("hit_rate", r.scheme.hit_rate())
                .set("avg_latency", r.avg_latency())
                .set("mean_core_cycles", r.mean_core_cycles())
                .set("locator_heals", r.scheme.locator_heals)
                .set("ecc_corrected", r.scheme.ecc_corrected)
                .set(
                    "ecc_detected_uncorrected",
                    r.scheme.ecc_detected_uncorrected,
                )
                .set("antt", antt);
            o
        };
        let mut degradation = Json::object();
        degradation
            .set("hit_rate", self.hit_rate_degradation())
            .set("avg_latency", self.latency_degradation())
            .set("antt", self.antt_degradation());
        let mut o = Json::object();
        o.set("scheme", self.scheme.as_str())
            .set("mix", self.mix.as_str())
            .set("seed", self.seed)
            .set("accesses_per_core", self.accesses_per_core)
            .set("ecc", self.ecc)
            .set("injected", injected)
            .set("injections", self.schedule.len())
            .set("detected_corrected", self.detected_corrected)
            .set("detected_uncorrected", self.detected_uncorrected)
            .set("silent_corruptions", self.silent_corruptions)
            .set(
                "shadow",
                self.shadow.as_ref().map(|s| {
                    let mut sh = Json::object();
                    sh.set("clean_violations", s.clean_violations)
                        .set("faulted_violations", s.faulted_violations)
                        .set("checks", s.checks)
                        .set("max_hit_rate_drift", s.max_drift)
                        .set("shadow_hit_rate", s.shadow_hit_rate);
                    sh
                }),
            )
            .set("clean_digest", self.clean_digest)
            .set("faulted_digest", self.faulted_digest)
            .set("clean", run(&self.clean, self.clean_antt))
            .set("faulted", run(&self.faulted, self.faulted_antt))
            .set("degradation", degradation);
        o
    }
}
