//! # bimodal-faults — fault injection and resilience campaigns
//!
//! Seeded fault campaigns against the metadata and hint structures of
//! every DRAM cache organization under study — the Bi-Modal variants
//! and the four baselines (AlloyCache, Loh-Hill, ATCache, Footprint
//! Cache) — with the detection/repair machinery to match:
//!
//! * [`FaultInjector`] / [`FaultRates`] — a deterministic per-access
//!   fault source (metadata tag flips, way-locator corruption, block
//!   size predictor upsets, delayed/dropped/duplicated background DRAM
//!   operations), recording every attempt in a replayable schedule,
//! * [`ShadowChecker`] — an untimed referee over the same demand
//!   stream: flags *impossible hits* (a hit on a region the stream
//!   never touched can only come from a corrupted tag) and tracks
//!   hit-rate drift, at each scheme's own allocation granularity,
//! * [`CampaignConfig`] / [`CampaignReport`] — a clean run, a faulted
//!   run under the injector, and a JSON report classifying every
//!   injection as detected-corrected, detected-uncorrected, or silent,
//!   with hit-rate / latency / ANTT degradation.
//!
//! The detection mechanisms themselves live in the model crates:
//! metadata SECDED ECC and the self-healing way locator in
//! `bimodal-core` ([`bimodal_core::FaultTarget`]), the baselines' ECC
//! surfaces in `bimodal-baselines`, DRAM response tampering in
//! `bimodal-dram`, and the forward-progress watchdog in `bimodal-sim`
//! ([`bimodal_sim::WatchdogConfig`]). A campaign with
//! every rate at zero consumes no randomness and reproduces the plain
//! simulation bit for bit — the resilience plumbing costs clean runs
//! nothing.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod campaign;
mod injector;
mod shadow;

pub use campaign::{CampaignConfig, CampaignError, CampaignReport, ShadowOutcome};
pub use injector::{FaultInjector, FaultKind, FaultRates, InjectionCounts, InjectionRecord};
pub use shadow::ShadowChecker;
