//! The seeded fault injector: decides, per demand access, whether to
//! corrupt something, and records every decision in a replayable
//! schedule.

use bimodal_core::DramCacheScheme;
use bimodal_dram::{Cycle, MemorySystem};
use bimodal_obs::{EventKind, Observer, TraceEvent};
use bimodal_prng::SmallRng;
use bimodal_sim::AccessContext;

/// Which structure one injection targeted.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// Single-bit tag flip in a metadata entry (SECDED-correctable).
    MetadataFlip,
    /// Double-bit tag flip in a metadata entry (SECDED detects, cannot
    /// correct).
    MetadataMultiFlip,
    /// Bit flip in a way-locator entry's way field.
    LocatorFlip,
    /// Bit upset in a block-size-predictor counter.
    PredictorUpset,
    /// A pending background DRAM operation delivered late.
    DramDelay,
    /// A pending background DRAM operation lost.
    DramDrop,
    /// A pending background DRAM operation replayed.
    DramDuplicate,
}

impl FaultKind {
    /// Stable lowercase name used in exports and trace events.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            FaultKind::MetadataFlip => "metadata_flip",
            FaultKind::MetadataMultiFlip => "metadata_multi_flip",
            FaultKind::LocatorFlip => "locator_flip",
            FaultKind::PredictorUpset => "predictor_upset",
            FaultKind::DramDelay => "dram_delay",
            FaultKind::DramDrop => "dram_drop",
            FaultKind::DramDuplicate => "dram_duplicate",
        }
    }
}

/// Per-access injection probabilities. A rate of zero never draws from
/// the generator, so an all-zero campaign consumes no randomness and
/// perturbs nothing.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct FaultRates {
    /// Probability of flipping a random occupied metadata entry's tag.
    pub metadata: f64,
    /// Fraction of metadata flips that hit two bits (uncorrectable by
    /// SECDED).
    pub multi_bit: f64,
    /// Probability of corrupting a random way-locator entry.
    pub locator: f64,
    /// Probability of upsetting a block-size-predictor counter.
    pub predictor: f64,
    /// Probability of tampering with a pending background DRAM operation
    /// (delay, drop or duplicate, chosen uniformly).
    pub dram: f64,
}

impl FaultRates {
    /// True when every rate is zero (the injector will never fire).
    #[must_use]
    pub fn is_zero(&self) -> bool {
        self.metadata == 0.0 && self.locator == 0.0 && self.predictor == 0.0 && self.dram == 0.0
    }
}

/// One injection attempt, as recorded in the campaign schedule.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct InjectionRecord {
    /// Global access sequence number the injection rode on.
    pub seq: u64,
    /// Simulated cycle.
    pub at: Cycle,
    /// What was targeted.
    pub kind: FaultKind,
    /// Whether a target existed (an empty structure yields a recorded
    /// but unapplied attempt).
    pub landed: bool,
}

/// Per-kind counters over the landed injections.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct InjectionCounts {
    /// Single-bit metadata flips landed.
    pub metadata: u64,
    /// Multi-bit metadata flips landed.
    pub metadata_multi: u64,
    /// Way-locator corruptions landed.
    pub locator: u64,
    /// Predictor upsets landed.
    pub predictor: u64,
    /// DRAM response tamperings landed.
    pub dram: u64,
    /// Metadata flips applied raw to the array (no ECC ledger): each is
    /// a real, undetected corruption until the workload stumbles on it.
    pub metadata_applied: u64,
}

impl InjectionCounts {
    /// Total landed injections.
    #[must_use]
    pub fn total(&self) -> u64 {
        self.metadata + self.metadata_multi + self.locator + self.predictor + self.dram
    }
}

/// Seeded per-access fault source. Drives the [`bimodal_core::FaultTarget`]
/// surface of the scheme and the DRAM tamper hooks, and logs every
/// attempt.
#[derive(Debug)]
pub struct FaultInjector {
    rates: FaultRates,
    /// Inject only while `seq` lies in this window (global sequence
    /// numbers, warm-up included). `None` = the whole measured run.
    window: Option<(u64, u64)>,
    rng: SmallRng,
    schedule: Vec<InjectionRecord>,
    counts: InjectionCounts,
}

impl FaultInjector {
    /// A deterministic injector: same seed, rates and window produce the
    /// same schedule against the same run.
    #[must_use]
    pub fn new(seed: u64, rates: FaultRates, window: Option<(u64, u64)>) -> Self {
        FaultInjector {
            rates,
            window,
            rng: SmallRng::seed_from_u64(seed ^ 0xFA_017_CA4),
            schedule: Vec::new(),
            counts: InjectionCounts::default(),
        }
    }

    /// The injection attempts so far, in issue order.
    #[must_use]
    pub fn schedule(&self) -> &[InjectionRecord] {
        &self.schedule
    }

    /// Landed-injection counters.
    #[must_use]
    pub fn counts(&self) -> InjectionCounts {
        self.counts
    }

    fn in_window(&self, ctx: AccessContext) -> bool {
        ctx.warmed_up
            && self
                .window
                .is_none_or(|(start, end)| ctx.seq >= start && ctx.seq < end)
    }

    /// Rolls every configured fault source once for this access. Called
    /// by the campaign hook before the access is issued.
    pub fn maybe_inject(
        &mut self,
        ctx: AccessContext,
        scheme: &mut dyn DramCacheScheme,
        mem: &mut MemorySystem,
        obs: &mut Observer,
    ) {
        if !self.in_window(ctx) || self.rates.is_zero() {
            return;
        }
        if self.rates.metadata > 0.0 && self.rng.gen_bool(self.rates.metadata) {
            let multi = self.rates.multi_bit > 0.0 && self.rng.gen_bool(self.rates.multi_bit);
            let kind = if multi {
                FaultKind::MetadataMultiFlip
            } else {
                FaultKind::MetadataFlip
            };
            let fault = scheme
                .fault_target()
                .and_then(|ft| ft.inject_metadata_flip(&mut self.rng, multi));
            if let Some(f) = fault {
                if multi {
                    self.counts.metadata_multi += 1;
                } else {
                    self.counts.metadata += 1;
                }
                if f.applied {
                    self.counts.metadata_applied += 1;
                }
            }
            self.log(ctx, kind, fault.is_some(), obs);
        }
        if self.rates.locator > 0.0 && self.rng.gen_bool(self.rates.locator) {
            let landed = scheme
                .fault_target()
                .is_some_and(|ft| ft.inject_locator_flip(&mut self.rng));
            if landed {
                self.counts.locator += 1;
            }
            self.log(ctx, FaultKind::LocatorFlip, landed, obs);
        }
        if self.rates.predictor > 0.0 && self.rng.gen_bool(self.rates.predictor) {
            let landed = scheme
                .fault_target()
                .is_some_and(|ft| ft.inject_predictor_upset(&mut self.rng));
            if landed {
                self.counts.predictor += 1;
            }
            self.log(ctx, FaultKind::PredictorUpset, landed, obs);
        }
        if self.rates.dram > 0.0 && self.rng.gen_bool(self.rates.dram) {
            let (kind, landed) = self.tamper_dram(mem);
            if landed {
                self.counts.dram += 1;
            }
            self.log(ctx, kind, landed, obs);
        }
    }

    /// Tampers with one pending background DRAM operation: delay, drop
    /// or duplicate, uniformly.
    fn tamper_dram(&mut self, mem: &mut MemorySystem) -> (FaultKind, bool) {
        let pending = mem.deferred_pending();
        let which = self.rng.gen_range(0u32..3);
        if pending == 0 {
            let kind = match which {
                0 => FaultKind::DramDelay,
                1 => FaultKind::DramDrop,
                _ => FaultKind::DramDuplicate,
            };
            return (kind, false);
        }
        let n = self.rng.gen_range(0usize..pending);
        match which {
            0 => {
                let extra = 100 + u64::from(self.rng.gen_range(0u32..900));
                (FaultKind::DramDelay, mem.tamper_delay(n, extra))
            }
            1 => (FaultKind::DramDrop, mem.tamper_drop(n)),
            _ => (FaultKind::DramDuplicate, mem.tamper_duplicate(n)),
        }
    }

    fn log(&mut self, ctx: AccessContext, kind: FaultKind, landed: bool, obs: &mut Observer) {
        self.schedule.push(InjectionRecord {
            seq: ctx.seq,
            at: ctx.now,
            kind,
            landed,
        });
        if obs.is_enabled() {
            if let Some(ring) = obs.trace.as_mut() {
                ring.push(TraceEvent {
                    at: ctx.now,
                    dur: 0,
                    kind: EventKind::Fault,
                    core: ctx.core,
                    addr: ctx.addr,
                    what: kind.name(),
                    detail: u64::from(landed),
                });
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bimodal_core::{BiModalCache, BiModalConfig, CacheAccess};

    fn ctx(seq: u64, warmed_up: bool) -> AccessContext {
        AccessContext {
            seq,
            core: 0,
            now: 1_000,
            addr: 0x4000,
            is_write: false,
            warmed_up,
        }
    }

    fn warmed_scheme() -> (BiModalCache, MemorySystem) {
        let mut c = BiModalCache::new(BiModalConfig::for_cache_mb(1));
        let mut mem = MemorySystem::quad_core();
        let mut now = 0;
        for k in 0..64u64 {
            let out = c.access(CacheAccess::read(k * 512, now), &mut mem);
            now = out.complete + 10;
        }
        (c, mem)
    }

    #[test]
    fn zero_rates_never_fire_and_consume_no_randomness() {
        let (mut c, mut mem) = warmed_scheme();
        let mut inj = FaultInjector::new(7, FaultRates::default(), None);
        let mut obs = Observer::disabled();
        for s in 0..1_000 {
            inj.maybe_inject(ctx(s, true), &mut c, &mut mem, &mut obs);
        }
        assert!(inj.schedule().is_empty());
        assert_eq!(inj.counts().total(), 0);
    }

    #[test]
    fn same_seed_same_schedule() {
        let rates = FaultRates {
            metadata: 0.2,
            locator: 0.1,
            predictor: 0.1,
            dram: 0.1,
            multi_bit: 0.3,
        };
        let run = || {
            let (mut c, mut mem) = warmed_scheme();
            let mut inj = FaultInjector::new(99, rates, None);
            let mut obs = Observer::disabled();
            for s in 0..500 {
                inj.maybe_inject(ctx(s, true), &mut c, &mut mem, &mut obs);
            }
            (inj.schedule().to_vec(), inj.counts())
        };
        let (a, ca) = run();
        let (b, cb) = run();
        assert_eq!(a, b);
        assert_eq!(ca, cb);
        assert!(!a.is_empty(), "rates this high must fire in 500 rolls");
    }

    #[test]
    fn warmup_and_window_gate_injection() {
        let rates = FaultRates {
            metadata: 1.0,
            ..FaultRates::default()
        };
        let (mut c, mut mem) = warmed_scheme();
        let mut inj = FaultInjector::new(1, rates, Some((10, 20)));
        let mut obs = Observer::disabled();
        for s in 0..30 {
            inj.maybe_inject(ctx(s, s >= 5), &mut c, &mut mem, &mut obs);
        }
        // Only seqs 10..20 inject (warm-up at 5 precedes the window).
        assert_eq!(inj.schedule().len(), 10);
        assert!(inj.schedule().iter().all(|r| (10..20).contains(&r.seq)));
    }

    #[test]
    fn fault_events_land_in_the_ring() {
        let rates = FaultRates {
            locator: 1.0,
            ..FaultRates::default()
        };
        let (mut c, mut mem) = warmed_scheme();
        let mut inj = FaultInjector::new(3, rates, None);
        let mut obs = bimodal_obs::Observer::enabled(
            bimodal_obs::ObserverConfig::default().with_trace(64, 1),
        );
        inj.maybe_inject(ctx(0, true), &mut c, &mut mem, &mut obs);
        let ring = obs.trace.as_ref().expect("tracing on");
        assert_eq!(ring.len(), 1);
        assert_eq!(ring.events()[0].kind, EventKind::Fault);
    }
}
