//! End-to-end resilience guarantees: zero-rate transparency, schedule
//! determinism, ECC completeness, and hint-fault harmlessness.

use bimodal_faults::{CampaignConfig, CampaignError, FaultRates};
use bimodal_obs::{Json, Observer};
use bimodal_sim::{SchemeKind, Simulation, SystemConfig};
use bimodal_workloads::WorkloadMix;

fn quick_system() -> SystemConfig {
    SystemConfig::quad_core().with_cache_mb(4).with_warmup(300)
}

fn single_core_mix() -> WorkloadMix {
    let spec = bimodal_workloads::spec_profile("mcf").expect("known workload");
    WorkloadMix::from_programs("mcf-solo", vec![spec])
}

fn campaign() -> CampaignConfig {
    let mix = WorkloadMix::quad("Q1").expect("known mix");
    CampaignConfig::new(quick_system(), SchemeKind::BiModal, mix).with_accesses(800)
}

#[test]
fn zero_rate_campaign_is_bit_identical_to_a_plain_run() {
    let report = campaign().run(&mut Observer::disabled()).expect("runs");
    // No injections, no degradation, identical runs.
    assert_eq!(report.counts.total(), 0);
    assert!(report.schedule.is_empty());
    assert_eq!(report.clean, report.faulted);
    assert_eq!(report.clean_digest, report.faulted_digest);
    // And identical to the plain simulation facade on the same inputs.
    let mix = WorkloadMix::quad("Q1").expect("known mix");
    let plain = Simulation::new(quick_system(), SchemeKind::BiModal)
        .run_mix(&mix, 800)
        .expect("runs");
    assert_eq!(report.faulted.scheme, plain.scheme);
    assert_eq!(report.faulted.core_cycles, plain.core_cycles);
    // The hooks saw a clean run: shadow raised nothing.
    let shadow = report.shadow.expect("shadow on by default");
    assert_eq!(shadow.clean_violations, 0);
    assert_eq!(shadow.faulted_violations, 0);
    assert_eq!(report.silent_corruptions, 0);
}

#[test]
fn same_seed_reproduces_schedule_and_report() {
    let rates = FaultRates {
        metadata: 0.01,
        multi_bit: 0.2,
        locator: 0.01,
        predictor: 0.005,
        dram: 0.005,
    };
    let run = || {
        campaign()
            .with_rates(rates)
            .with_seed(0xDEAD)
            .run(&mut Observer::disabled())
            .expect("runs")
    };
    let a = run();
    let b = run();
    assert_eq!(a.schedule, b.schedule);
    assert_eq!(a, b);
    assert!(a.counts.total() > 0, "these rates must land injections");
    // A different seed lands a different schedule.
    let c = campaign()
        .with_rates(rates)
        .with_seed(0xBEEF)
        .run(&mut Observer::disabled())
        .expect("runs");
    assert_ne!(a.schedule, c.schedule);
}

#[test]
fn ecc_campaign_has_zero_silent_corruptions() {
    let rates = FaultRates {
        metadata: 0.05,
        multi_bit: 0.25,
        ..FaultRates::default()
    };
    let report = campaign()
        .with_rates(rates)
        .with_ecc(true)
        .with_seed(7)
        .run(&mut Observer::disabled())
        .expect("runs");
    let flips = report.counts.metadata + report.counts.metadata_multi;
    assert!(flips > 0, "the campaign must land metadata flips");
    // Every flip was ledgered (never applied raw) and ended up
    // classified as corrected or detected-uncorrectable.
    assert_eq!(report.counts.metadata_applied, 0);
    assert_eq!(report.silent_corruptions, 0);
    assert_eq!(
        report.shadow.expect("shadow on").faulted_violations,
        0,
        "ECC must stop corrupted tags from ever serving data"
    );
    assert!(report.detected_corrected + report.detected_uncorrected >= flips);
}

#[test]
fn without_ecc_the_same_flips_go_silent() {
    let rates = FaultRates {
        metadata: 0.05,
        ..FaultRates::default()
    };
    let report = campaign()
        .with_rates(rates)
        .with_ecc(false)
        .with_seed(7)
        .run(&mut Observer::disabled())
        .expect("runs");
    assert!(report.counts.metadata > 0);
    assert_eq!(report.counts.metadata_applied, report.counts.metadata);
    assert_eq!(report.silent_corruptions, report.counts.metadata);
}

#[test]
fn hint_only_faults_never_touch_functional_contents() {
    // Single core: with identical access order, locator and predictor
    // corruption may cost latency but must leave the cache's contents
    // digest untouched (hints are self-healing, never authoritative).
    let mix = single_core_mix();
    let rates = FaultRates {
        locator: 0.05,
        predictor: 0.05,
        ..FaultRates::default()
    };
    let report = CampaignConfig::new(quick_system(), SchemeKind::BiModal, mix)
        .with_accesses(1_500)
        .with_rates(rates)
        .with_seed(11)
        .run(&mut Observer::disabled())
        .expect("runs");
    assert!(
        report.counts.locator + report.counts.predictor > 0,
        "the campaign must land hint faults"
    );
    assert_eq!(report.silent_corruptions, 0);
    assert_eq!(report.shadow.expect("shadow on").faulted_violations, 0);
    assert_eq!(
        report.clean_digest, report.faulted_digest,
        "hint corruption must never change what the cache holds"
    );
    // The locator heals show up in the stats, and healing costs
    // full tag probes (timing-visible, correctness-invisible).
    assert!(report.faulted.scheme.locator_heals > 0);
}

#[test]
fn dram_response_faults_change_timing_not_contents() {
    let mix = single_core_mix();
    let rates = FaultRates {
        dram: 0.05,
        ..FaultRates::default()
    };
    let report = CampaignConfig::new(quick_system(), SchemeKind::BiModal, mix)
        .with_accesses(1_500)
        .with_rates(rates)
        .with_seed(13)
        .run(&mut Observer::disabled())
        .expect("runs");
    assert!(report.counts.dram > 0, "the campaign must land DRAM faults");
    assert_eq!(report.silent_corruptions, 0);
    assert_eq!(report.clean_digest, report.faulted_digest);
}

#[test]
fn campaign_report_json_round_trips() {
    let rates = FaultRates {
        metadata: 0.02,
        locator: 0.02,
        ..FaultRates::default()
    };
    let report = campaign()
        .with_rates(rates)
        .with_ecc(true)
        .with_antt(true)
        .run(&mut Observer::disabled())
        .expect("runs");
    let j = report.to_json();
    let text = j.to_pretty();
    let parsed = Json::parse(&text).expect("round-trips");
    assert_eq!(
        parsed.get("silent_corruptions").and_then(Json::as_f64),
        Some(0.0)
    );
    assert_eq!(parsed.get("scheme").and_then(Json::as_str), Some("BiModal"));
    assert!(parsed
        .get("degradation")
        .and_then(|d| d.get("antt"))
        .is_some());
    assert!(report.clean_antt.is_some() && report.faulted_antt.is_some());
}

#[test]
fn baseline_schemes_run_campaigns_and_classify_faults() {
    // Every baseline organization now exposes a fault surface: a short
    // ECC campaign must land flips and classify all of them.
    let rates = FaultRates {
        metadata: 0.05,
        multi_bit: 0.25,
        ..FaultRates::default()
    };
    for kind in [
        SchemeKind::Alloy,
        SchemeKind::LohHill,
        SchemeKind::AtCache,
        SchemeKind::Footprint,
    ] {
        let mix = WorkloadMix::quad("Q1").expect("known mix");
        let report = CampaignConfig::new(quick_system(), kind, mix)
            .with_accesses(800)
            .with_rates(rates)
            .with_ecc(true)
            .with_seed(7)
            .run(&mut Observer::disabled())
            .expect("baseline campaign runs");
        let flips = report.counts.metadata + report.counts.metadata_multi;
        assert!(flips > 0, "{kind}: the campaign must land metadata flips");
        assert_eq!(report.counts.metadata_applied, 0, "{kind}");
        assert_eq!(report.silent_corruptions, 0, "{kind}");
        assert_eq!(
            report.shadow.expect("shadow on").faulted_violations,
            0,
            "{kind}: ECC must stop corrupted tags from ever serving data"
        );
        assert!(
            report.detected_corrected + report.detected_uncorrected >= flips,
            "{kind}: every flip classified"
        );
    }
}

#[test]
fn zero_access_campaigns_are_still_rejected() {
    let mix = WorkloadMix::quad("Q1").expect("known mix");
    let err = CampaignConfig::new(quick_system(), SchemeKind::Alloy, mix)
        .with_accesses(0)
        .run(&mut Observer::disabled())
        .expect_err("must reject");
    assert!(matches!(err, CampaignError::Invalid(_)));
}
