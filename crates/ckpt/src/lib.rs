//! The `bimodal-ckpt-v1` snapshot format and atomic file helpers.
//!
//! A checkpoint is a sequence of named, individually checksummed
//! sections behind a magic/version header. Sections keep corruption
//! diagnosable — a flipped bit names the section it landed in instead of
//! producing garbage state three crates away — and let readers skip
//! sections they do not understand.
//!
//! The value encoding is deliberately dumb: little-endian fixed-width
//! integers, `u64` length prefixes, `f64` as IEEE bits. Every consumer of
//! the format lives in this workspace, so there is no schema evolution
//! machinery; the version byte gates incompatible changes wholesale.
//!
//! Nothing here allocates per value on the write path beyond the growing
//! output buffer, and reads never panic on malformed input: every decode
//! error surfaces as a typed [`CkptError`] naming the section being read.

use std::collections::VecDeque;
use std::fmt;
use std::fs;
use std::io::Write as _;
use std::path::{Path, PathBuf};

/// File magic, followed by a `u32` version.
pub const MAGIC: &[u8; 12] = b"bimodal-ckpt";
/// Current format version.
pub const VERSION: u32 = 1;

/// Why a checkpoint could not be read (or written).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CkptError {
    /// Underlying filesystem error.
    Io(String),
    /// The file does not start with [`MAGIC`].
    BadMagic,
    /// The file's version is not [`VERSION`].
    BadVersion {
        /// Version found in the header.
        found: u32,
    },
    /// The file (or a section payload) ended early.
    Truncated {
        /// Section being decoded, or `"header"`.
        section: String,
    },
    /// A section's checksum does not match its payload.
    Checksum {
        /// Name of the offending section.
        section: String,
    },
    /// A section decoded to structurally impossible values.
    Corrupt {
        /// Name of the offending section.
        section: String,
        /// What was wrong.
        detail: String,
    },
    /// A section required by the reader is absent.
    MissingSection {
        /// Name of the missing section.
        section: String,
    },
    /// The checkpoint does not belong to the run being resumed.
    Mismatch {
        /// Human-readable description of the disagreement.
        detail: String,
    },
}

impl fmt::Display for CkptError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CkptError::Io(e) => write!(f, "checkpoint I/O error: {e}"),
            CkptError::BadMagic => write!(f, "not a bimodal-ckpt file (bad magic)"),
            CkptError::BadVersion { found } => {
                write!(
                    f,
                    "unsupported checkpoint version {found} (expected {VERSION})"
                )
            }
            CkptError::Truncated { section } => {
                write!(f, "checkpoint truncated while reading section '{section}'")
            }
            CkptError::Checksum { section } => {
                write!(f, "checksum mismatch in checkpoint section '{section}'")
            }
            CkptError::Corrupt { section, detail } => {
                write!(f, "corrupt checkpoint section '{section}': {detail}")
            }
            CkptError::MissingSection { section } => {
                write!(f, "checkpoint is missing section '{section}'")
            }
            CkptError::Mismatch { detail } => {
                write!(f, "checkpoint does not match this run: {detail}")
            }
        }
    }
}

impl std::error::Error for CkptError {}

/// FNV-1a over a byte slice — the per-section checksum. Not
/// cryptographic; it only needs to catch torn writes and bit rot.
#[must_use]
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h = (h ^ u64::from(b)).wrapping_mul(0x100_0000_01b3);
    }
    h
}

/// Append-only little-endian value writer backing one section.
#[derive(Debug, Default)]
pub struct SnapshotWriter {
    buf: Vec<u8>,
}

impl SnapshotWriter {
    /// An empty writer.
    #[must_use]
    pub fn new() -> Self {
        SnapshotWriter::default()
    }

    /// The bytes written so far.
    #[must_use]
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }

    /// Appends one byte.
    pub fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Appends a `u16`.
    pub fn u16(&mut self, v: u16) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a `u32`.
    pub fn u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a `u64`.
    pub fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a `u128`.
    pub fn u128(&mut self, v: u128) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends an `i32`.
    pub fn i32(&mut self, v: i32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends an `i64`.
    pub fn i64(&mut self, v: i64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a `usize` as `u64`.
    pub fn usize(&mut self, v: usize) {
        self.u64(v as u64);
    }

    /// Appends an `f64` as its IEEE-754 bits.
    pub fn f64(&mut self, v: f64) {
        self.u64(v.to_bits());
    }

    /// Appends a bool as one byte.
    pub fn bool(&mut self, v: bool) {
        self.u8(u8::from(v));
    }

    /// Appends a length-prefixed UTF-8 string.
    pub fn str(&mut self, v: &str) {
        self.usize(v.len());
        self.buf.extend_from_slice(v.as_bytes());
    }

    /// Appends raw bytes with a length prefix.
    pub fn bytes(&mut self, v: &[u8]) {
        self.usize(v.len());
        self.buf.extend_from_slice(v);
    }
}

/// Cursor over one section's payload; every read is bounds-checked and
/// reports the section name on failure.
#[derive(Debug)]
pub struct SnapshotReader<'a> {
    buf: &'a [u8],
    pos: usize,
    section: &'a str,
}

impl<'a> SnapshotReader<'a> {
    /// A reader over `buf`, attributing errors to `section`.
    #[must_use]
    pub fn new(buf: &'a [u8], section: &'a str) -> Self {
        SnapshotReader {
            buf,
            pos: 0,
            section,
        }
    }

    /// The section this reader decodes (for error construction).
    #[must_use]
    pub fn section(&self) -> &str {
        self.section
    }

    /// True when every byte has been consumed.
    #[must_use]
    pub fn is_exhausted(&self) -> bool {
        self.pos >= self.buf.len()
    }

    /// A [`CkptError::Corrupt`] attributed to this section.
    #[must_use]
    pub fn corrupt(&self, detail: impl Into<String>) -> CkptError {
        CkptError::Corrupt {
            section: self.section.to_owned(),
            detail: detail.into(),
        }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], CkptError> {
        let end = self
            .pos
            .checked_add(n)
            .filter(|&e| e <= self.buf.len())
            .ok_or_else(|| CkptError::Truncated {
                section: self.section.to_owned(),
            })?;
        let s = &self.buf[self.pos..end];
        self.pos = end;
        Ok(s)
    }

    /// Reads one byte.
    pub fn u8(&mut self) -> Result<u8, CkptError> {
        Ok(self.take(1)?[0])
    }

    /// Reads a `u16`.
    pub fn u16(&mut self) -> Result<u16, CkptError> {
        Ok(u16::from_le_bytes(self.take(2)?.try_into().expect("sized")))
    }

    /// Reads a `u32`.
    pub fn u32(&mut self) -> Result<u32, CkptError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().expect("sized")))
    }

    /// Reads a `u64`.
    pub fn u64(&mut self) -> Result<u64, CkptError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().expect("sized")))
    }

    /// Reads a `u128`.
    pub fn u128(&mut self) -> Result<u128, CkptError> {
        Ok(u128::from_le_bytes(
            self.take(16)?.try_into().expect("sized"),
        ))
    }

    /// Reads an `i32`.
    pub fn i32(&mut self) -> Result<i32, CkptError> {
        Ok(i32::from_le_bytes(self.take(4)?.try_into().expect("sized")))
    }

    /// Reads an `i64`.
    pub fn i64(&mut self) -> Result<i64, CkptError> {
        Ok(i64::from_le_bytes(self.take(8)?.try_into().expect("sized")))
    }

    /// Reads a `usize` (stored as `u64`), guarding against values that
    /// cannot index memory on this host.
    pub fn usize(&mut self) -> Result<usize, CkptError> {
        let v = self.u64()?;
        usize::try_from(v).map_err(|_| self.corrupt(format!("length {v} overflows usize")))
    }

    /// Reads an `f64` from its IEEE-754 bits.
    pub fn f64(&mut self) -> Result<f64, CkptError> {
        Ok(f64::from_bits(self.u64()?))
    }

    /// Reads a bool, rejecting bytes other than 0/1.
    pub fn bool(&mut self) -> Result<bool, CkptError> {
        match self.u8()? {
            0 => Ok(false),
            1 => Ok(true),
            b => Err(self.corrupt(format!("invalid bool byte {b}"))),
        }
    }

    /// Reads a length-prefixed UTF-8 string.
    pub fn str(&mut self) -> Result<String, CkptError> {
        let n = self.bounded_len()?;
        let bytes = self.take(n)?;
        String::from_utf8(bytes.to_vec()).map_err(|_| self.corrupt("invalid UTF-8 string"))
    }

    /// Reads length-prefixed raw bytes.
    pub fn bytes(&mut self) -> Result<Vec<u8>, CkptError> {
        let n = self.bounded_len()?;
        Ok(self.take(n)?.to_vec())
    }

    /// Reads a length prefix, rejecting lengths beyond the remaining
    /// payload (a bit flip in a length field must not trigger a huge
    /// allocation before the bounds check catches it).
    pub fn bounded_len(&mut self) -> Result<usize, CkptError> {
        let n = self.usize()?;
        if n > self.buf.len().saturating_sub(self.pos) {
            return Err(CkptError::Truncated {
                section: self.section.to_owned(),
            });
        }
        Ok(n)
    }
}

/// A type that can serialize its full state into a section and rebuild
/// itself from it.
pub trait Snapshot: Sized {
    /// Appends this value's state.
    fn save(&self, w: &mut SnapshotWriter);
    /// Reads one value back.
    ///
    /// # Errors
    ///
    /// Propagates decode errors ([`CkptError::Truncated`] /
    /// [`CkptError::Corrupt`]) from the reader.
    fn load(r: &mut SnapshotReader<'_>) -> Result<Self, CkptError>;
}

macro_rules! snapshot_prim {
    ($t:ty, $w:ident, $r:ident) => {
        impl Snapshot for $t {
            fn save(&self, w: &mut SnapshotWriter) {
                w.$w(*self);
            }
            fn load(r: &mut SnapshotReader<'_>) -> Result<Self, CkptError> {
                r.$r()
            }
        }
    };
}

snapshot_prim!(u8, u8, u8);
snapshot_prim!(u16, u16, u16);
snapshot_prim!(u32, u32, u32);
snapshot_prim!(u64, u64, u64);
snapshot_prim!(u128, u128, u128);
snapshot_prim!(i32, i32, i32);
snapshot_prim!(i64, i64, i64);
snapshot_prim!(f64, f64, f64);
snapshot_prim!(bool, bool, bool);

impl Snapshot for usize {
    fn save(&self, w: &mut SnapshotWriter) {
        w.usize(*self);
    }
    fn load(r: &mut SnapshotReader<'_>) -> Result<Self, CkptError> {
        r.usize()
    }
}

impl Snapshot for String {
    fn save(&self, w: &mut SnapshotWriter) {
        w.str(self);
    }
    fn load(r: &mut SnapshotReader<'_>) -> Result<Self, CkptError> {
        r.str()
    }
}

impl<T: Snapshot> Snapshot for Vec<T> {
    fn save(&self, w: &mut SnapshotWriter) {
        w.usize(self.len());
        for v in self {
            v.save(w);
        }
    }
    fn load(r: &mut SnapshotReader<'_>) -> Result<Self, CkptError> {
        let n = r.bounded_len()?;
        let mut v = Vec::with_capacity(n.min(1 << 20));
        for _ in 0..n {
            v.push(T::load(r)?);
        }
        Ok(v)
    }
}

impl<T: Snapshot> Snapshot for VecDeque<T> {
    fn save(&self, w: &mut SnapshotWriter) {
        w.usize(self.len());
        for v in self {
            v.save(w);
        }
    }
    fn load(r: &mut SnapshotReader<'_>) -> Result<Self, CkptError> {
        let n = r.bounded_len()?;
        let mut v = VecDeque::with_capacity(n.min(1 << 20));
        for _ in 0..n {
            v.push_back(T::load(r)?);
        }
        Ok(v)
    }
}

impl<T: Snapshot> Snapshot for Option<T> {
    fn save(&self, w: &mut SnapshotWriter) {
        match self {
            None => w.u8(0),
            Some(v) => {
                w.u8(1);
                v.save(w);
            }
        }
    }
    fn load(r: &mut SnapshotReader<'_>) -> Result<Self, CkptError> {
        match r.u8()? {
            0 => Ok(None),
            1 => Ok(Some(T::load(r)?)),
            b => Err(r.corrupt(format!("invalid Option tag {b}"))),
        }
    }
}

impl<A: Snapshot, B: Snapshot> Snapshot for (A, B) {
    fn save(&self, w: &mut SnapshotWriter) {
        self.0.save(w);
        self.1.save(w);
    }
    fn load(r: &mut SnapshotReader<'_>) -> Result<Self, CkptError> {
        Ok((A::load(r)?, B::load(r)?))
    }
}

impl<A: Snapshot, B: Snapshot, C: Snapshot> Snapshot for (A, B, C) {
    fn save(&self, w: &mut SnapshotWriter) {
        self.0.save(w);
        self.1.save(w);
        self.2.save(w);
    }
    fn load(r: &mut SnapshotReader<'_>) -> Result<Self, CkptError> {
        Ok((A::load(r)?, B::load(r)?, C::load(r)?))
    }
}

impl<T: Snapshot + Copy + Default, const N: usize> Snapshot for [T; N] {
    fn save(&self, w: &mut SnapshotWriter) {
        for v in self {
            v.save(w);
        }
    }
    fn load(r: &mut SnapshotReader<'_>) -> Result<Self, CkptError> {
        let mut a = [T::default(); N];
        for slot in &mut a {
            *slot = T::load(r)?;
        }
        Ok(a)
    }
}

/// An in-memory `bimodal-ckpt-v1` file: ordered named sections.
#[derive(Debug, Default, Clone, PartialEq, Eq)]
pub struct CkptFile {
    sections: Vec<(String, Vec<u8>)>,
}

impl CkptFile {
    /// An empty file.
    #[must_use]
    pub fn new() -> Self {
        CkptFile::default()
    }

    /// Adds (or replaces) a section.
    pub fn put(&mut self, name: &str, payload: Vec<u8>) {
        if let Some(s) = self.sections.iter_mut().find(|(n, _)| n == name) {
            s.1 = payload;
        } else {
            self.sections.push((name.to_owned(), payload));
        }
    }

    /// Section names in file order.
    #[must_use]
    pub fn names(&self) -> Vec<&str> {
        self.sections.iter().map(|(n, _)| n.as_str()).collect()
    }

    /// A reader over the named section.
    ///
    /// # Errors
    ///
    /// [`CkptError::MissingSection`] when absent.
    pub fn section<'a>(&'a self, name: &'a str) -> Result<SnapshotReader<'a>, CkptError> {
        self.sections
            .iter()
            .find(|(n, _)| n == name)
            .map(|(n, p)| SnapshotReader::new(p, n))
            .ok_or_else(|| CkptError::MissingSection {
                section: name.to_owned(),
            })
    }

    /// Serializes header + checksummed sections.
    #[must_use]
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::new();
        out.extend_from_slice(MAGIC);
        out.extend_from_slice(&VERSION.to_le_bytes());
        out.extend_from_slice(&(self.sections.len() as u32).to_le_bytes());
        for (name, payload) in &self.sections {
            out.extend_from_slice(&(name.len() as u32).to_le_bytes());
            out.extend_from_slice(name.as_bytes());
            out.extend_from_slice(&(payload.len() as u64).to_le_bytes());
            out.extend_from_slice(&fnv1a(payload).to_le_bytes());
            out.extend_from_slice(payload);
        }
        out
    }

    /// Parses a serialized file, verifying magic, version and every
    /// section checksum.
    ///
    /// # Errors
    ///
    /// Typed [`CkptError`]s for bad magic/version, truncation (naming the
    /// section being read) and checksum mismatches (naming the section).
    pub fn from_bytes(bytes: &[u8]) -> Result<Self, CkptError> {
        let header_err = || CkptError::Truncated {
            section: "header".to_owned(),
        };
        if bytes.len() < MAGIC.len() + 8 {
            if !bytes.starts_with(&MAGIC[..bytes.len().min(MAGIC.len())]) {
                return Err(CkptError::BadMagic);
            }
            return Err(header_err());
        }
        if &bytes[..MAGIC.len()] != MAGIC {
            return Err(CkptError::BadMagic);
        }
        let mut pos = MAGIC.len();
        let rd_u32 = |bytes: &[u8], pos: &mut usize| -> Option<u32> {
            let s = bytes.get(*pos..*pos + 4)?;
            *pos += 4;
            Some(u32::from_le_bytes(s.try_into().expect("sized")))
        };
        let version = rd_u32(bytes, &mut pos).ok_or_else(header_err)?;
        if version != VERSION {
            return Err(CkptError::BadVersion { found: version });
        }
        let count = rd_u32(bytes, &mut pos).ok_or_else(header_err)?;
        let mut sections = Vec::new();
        for _ in 0..count {
            let name_len = rd_u32(bytes, &mut pos).ok_or_else(header_err)? as usize;
            let name_bytes = bytes.get(pos..pos + name_len).ok_or_else(header_err)?;
            pos += name_len;
            let name = String::from_utf8(name_bytes.to_vec()).map_err(|_| CkptError::Corrupt {
                section: "header".to_owned(),
                detail: "section name is not UTF-8".to_owned(),
            })?;
            let len_bytes = bytes
                .get(pos..pos + 8)
                .ok_or_else(|| CkptError::Truncated {
                    section: name.clone(),
                })?;
            pos += 8;
            let payload_len = usize::try_from(u64::from_le_bytes(
                len_bytes.try_into().expect("sized"),
            ))
            .map_err(|_| CkptError::Corrupt {
                section: name.clone(),
                detail: "section length overflows usize".to_owned(),
            })?;
            let sum_bytes = bytes
                .get(pos..pos + 8)
                .ok_or_else(|| CkptError::Truncated {
                    section: name.clone(),
                })?;
            pos += 8;
            let expected = u64::from_le_bytes(sum_bytes.try_into().expect("sized"));
            let payload = bytes.get(
                pos..pos
                    .checked_add(payload_len)
                    .ok_or_else(|| CkptError::Truncated {
                        section: name.clone(),
                    })?,
            );
            let payload = payload.ok_or_else(|| CkptError::Truncated {
                section: name.clone(),
            })?;
            pos += payload_len;
            if fnv1a(payload) != expected {
                return Err(CkptError::Checksum { section: name });
            }
            sections.push((name, payload.to_vec()));
        }
        Ok(CkptFile { sections })
    }

    /// Reads and parses a checkpoint from disk.
    ///
    /// # Errors
    ///
    /// [`CkptError::Io`] on filesystem failure, otherwise the parse
    /// errors of [`CkptFile::from_bytes`].
    pub fn read(path: &Path) -> Result<Self, CkptError> {
        let bytes =
            fs::read(path).map_err(|e| CkptError::Io(format!("{}: {e}", path.display())))?;
        CkptFile::from_bytes(&bytes)
    }

    /// Writes the checkpoint atomically, keeping the previous checkpoint
    /// as `<path>.prev` (double buffering): a crash mid-write leaves
    /// either the old or the new file intact, never a torn one.
    ///
    /// # Errors
    ///
    /// [`CkptError::Io`] on filesystem failure.
    pub fn write(&self, path: &Path) -> Result<(), CkptError> {
        let io = |e: std::io::Error| CkptError::Io(format!("{}: {e}", path.display()));
        if path.exists() {
            let prev = sibling(path, ".prev");
            fs::rename(path, &prev).map_err(io)?;
        }
        atomic_write(path, &self.to_bytes()).map_err(io)
    }
}

/// `path` with `suffix` appended to its file name (same directory, so a
/// rename between the two is atomic).
fn sibling(path: &Path, suffix: &str) -> PathBuf {
    let mut name = path
        .file_name()
        .map_or_else(String::new, |n| n.to_string_lossy().into_owned());
    name.push_str(suffix);
    path.with_file_name(name)
}

/// Writes `bytes` to `path` via a temp file in the same directory plus an
/// atomic rename, so a crash never leaves a torn or partial file at
/// `path`. The temp name embeds the process id, so concurrent writers of
/// *different* content to the same path do not trample each other's temp
/// files mid-write.
///
/// # Errors
///
/// Any underlying filesystem error; the temp file is removed on failure.
pub fn atomic_write(path: &Path, bytes: &[u8]) -> std::io::Result<()> {
    let tmp = sibling(path, &format!(".{}.tmp", std::process::id()));
    let result = (|| {
        let mut f = fs::File::create(&tmp)?;
        f.write_all(bytes)?;
        f.sync_all()?;
        drop(f);
        fs::rename(&tmp, path)
    })();
    if result.is_err() {
        let _ = fs::remove_file(&tmp);
    }
    result
}

/// String flavor of [`atomic_write`] for text artifacts (JSON reports,
/// metrics, histories).
///
/// # Errors
///
/// Any underlying filesystem error.
pub fn atomic_write_str(path: &Path, text: &str) -> std::io::Result<()> {
    atomic_write(path, text.as_bytes())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_round_trip() {
        let mut w = SnapshotWriter::new();
        0xABu8.save(&mut w);
        0xBEEFu16.save(&mut w);
        0xDEAD_BEEFu32.save(&mut w);
        u64::MAX.save(&mut w);
        (u128::MAX - 7).save(&mut w);
        (-42i32).save(&mut w);
        (-7i64).save(&mut w);
        3.5f64.save(&mut w);
        true.save(&mut w);
        "héllo".to_owned().save(&mut w);
        vec![1u64, 2, 3].save(&mut w);
        Some(9u32).save(&mut w);
        Option::<u32>::None.save(&mut w);
        [1u8, 2, 3].save(&mut w);
        (4u32, 5u64).save(&mut w);
        let bytes = w.into_bytes();
        let mut r = SnapshotReader::new(&bytes, "test");
        assert_eq!(u8::load(&mut r).unwrap(), 0xAB);
        assert_eq!(u16::load(&mut r).unwrap(), 0xBEEF);
        assert_eq!(u32::load(&mut r).unwrap(), 0xDEAD_BEEF);
        assert_eq!(u64::load(&mut r).unwrap(), u64::MAX);
        assert_eq!(u128::load(&mut r).unwrap(), u128::MAX - 7);
        assert_eq!(i32::load(&mut r).unwrap(), -42);
        assert_eq!(i64::load(&mut r).unwrap(), -7);
        assert!((f64::load(&mut r).unwrap() - 3.5).abs() < f64::EPSILON);
        assert!(bool::load(&mut r).unwrap());
        assert_eq!(String::load(&mut r).unwrap(), "héllo");
        assert_eq!(Vec::<u64>::load(&mut r).unwrap(), vec![1, 2, 3]);
        assert_eq!(Option::<u32>::load(&mut r).unwrap(), Some(9));
        assert_eq!(Option::<u32>::load(&mut r).unwrap(), None);
        assert_eq!(<[u8; 3]>::load(&mut r).unwrap(), [1, 2, 3]);
        assert_eq!(<(u32, u64)>::load(&mut r).unwrap(), (4, 5));
        assert!(r.is_exhausted());
    }

    #[test]
    fn truncated_read_names_section() {
        let mut w = SnapshotWriter::new();
        7u64.save(&mut w);
        let bytes = w.into_bytes();
        let mut r = SnapshotReader::new(&bytes[..4], "engine");
        match u64::load(&mut r) {
            Err(CkptError::Truncated { section }) => assert_eq!(section, "engine"),
            other => panic!("expected truncation, got {other:?}"),
        }
    }

    #[test]
    fn oversized_length_prefix_is_rejected_before_allocation() {
        let mut w = SnapshotWriter::new();
        w.u64(u64::MAX); // absurd Vec length
        let bytes = w.into_bytes();
        let mut r = SnapshotReader::new(&bytes, "s");
        assert!(Vec::<u64>::load(&mut r).is_err());
    }

    #[test]
    fn file_round_trips_and_checks_magic_version_checksum() {
        let mut f = CkptFile::new();
        f.put("meta", vec![1, 2, 3]);
        f.put("engine", vec![9; 100]);
        let bytes = f.to_bytes();
        let back = CkptFile::from_bytes(&bytes).unwrap();
        assert_eq!(back, f);
        assert_eq!(back.names(), vec!["meta", "engine"]);

        // Bad magic.
        let mut bad = bytes.clone();
        bad[0] ^= 0xFF;
        assert_eq!(CkptFile::from_bytes(&bad), Err(CkptError::BadMagic));

        // Wrong version.
        let mut wrong = bytes.clone();
        wrong[MAGIC.len()] = 99;
        assert_eq!(
            CkptFile::from_bytes(&wrong),
            Err(CkptError::BadVersion { found: 99 })
        );

        // A flipped payload bit names its section.
        let mut flipped = bytes.clone();
        let last = flipped.len() - 1; // inside "engine"'s payload
        flipped[last] ^= 0x01;
        assert_eq!(
            CkptFile::from_bytes(&flipped),
            Err(CkptError::Checksum {
                section: "engine".to_owned()
            })
        );

        // Truncation mid-section names the section.
        let cut = &bytes[..bytes.len() - 10];
        match CkptFile::from_bytes(cut) {
            Err(CkptError::Truncated { section }) => assert_eq!(section, "engine"),
            other => panic!("expected truncation, got {other:?}"),
        }
    }

    #[test]
    fn atomic_write_replaces_whole_file() {
        let dir = std::env::temp_dir().join(format!("bimodal-ckpt-test-{}", std::process::id()));
        fs::create_dir_all(&dir).unwrap();
        let path = dir.join("artifact.json");
        atomic_write_str(&path, "first").unwrap();
        assert_eq!(fs::read_to_string(&path).unwrap(), "first");
        atomic_write_str(&path, "second, longer content").unwrap();
        assert_eq!(fs::read_to_string(&path).unwrap(), "second, longer content");
        // No temp litter left behind.
        let litter: Vec<_> = fs::read_dir(&dir)
            .unwrap()
            .filter_map(Result::ok)
            .filter(|e| e.file_name().to_string_lossy().contains(".tmp"))
            .collect();
        assert!(litter.is_empty(), "temp files left: {litter:?}");
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn checkpoint_write_keeps_previous_as_prev() {
        let dir = std::env::temp_dir().join(format!("bimodal-ckpt-prev-{}", std::process::id()));
        fs::create_dir_all(&dir).unwrap();
        let path = dir.join("run.ckpt");
        let mut a = CkptFile::new();
        a.put("meta", vec![1]);
        a.write(&path).unwrap();
        let mut b = CkptFile::new();
        b.put("meta", vec![2]);
        b.write(&path).unwrap();
        assert_eq!(CkptFile::read(&path).unwrap(), b);
        assert_eq!(CkptFile::read(&dir.join("run.ckpt.prev")).unwrap(), a);
        fs::remove_dir_all(&dir).unwrap();
    }
}
