//! SPEC-flavoured benchmark presets.
//!
//! Each preset pins the three workload properties (footprint, spatial
//! utilization, temporal reuse / intensity) to values chosen so the suite
//! as a whole spans the same behavioural spectrum as the paper's Table V
//! mixes: from >90% fully-used 512 B regions down to <30%, and from
//! memory-bound to compute-bound. The names echo well-known SPEC
//! benchmarks with the matching qualitative behaviour; the parameters are
//! not claimed to be measurements of those programs.
//!
//! Footprints are stated at "full scale" (hundreds of MB to ~2 GB, like
//! the paper's 990 MB quad-core average) and are usually scaled down by
//! the experiment configuration together with the cache size.

use crate::program::{SpatialProfile, TemporalProfile, WorkloadSpec};

const MB: u64 = 1 << 20;

/// Returns the named benchmark preset, or `None` for unknown names.
#[must_use]
#[allow(clippy::too_many_lines)]
pub fn spec_profile(name: &str) -> Option<WorkloadSpec> {
    let w = match name {
        // -------- memory-intensive, sparse (pointer chasing) --------
        "mcf" => WorkloadSpec::new(
            "mcf",
            1536 * MB,
            SpatialProfile::sparse(),
            TemporalProfile::weak(),
            0.28,
            100,
        ),
        "omnetpp" => WorkloadSpec::new(
            "omnetpp",
            512 * MB,
            SpatialProfile::sparse(),
            TemporalProfile::moderate(),
            0.33,
            150,
        ),
        "astar" => WorkloadSpec::new(
            "astar",
            384 * MB,
            SpatialProfile::sparse(),
            TemporalProfile::moderate(),
            0.25,
            280,
        ),
        "xalancbmk" => WorkloadSpec::new(
            "xalancbmk",
            256 * MB,
            SpatialProfile::sparse(),
            TemporalProfile::strong(),
            0.30,
            349,
        ),
        // -------- memory-intensive, dense (streaming) --------
        "lbm" => WorkloadSpec::new(
            "lbm",
            1024 * MB,
            SpatialProfile::dense(),
            TemporalProfile::weak(),
            0.45,
            83,
        ),
        "libquantum" => WorkloadSpec::new(
            "libquantum",
            768 * MB,
            SpatialProfile::dense(),
            TemporalProfile::weak(),
            0.20,
            100,
        ),
        "milc" => WorkloadSpec::new(
            "milc",
            1024 * MB,
            SpatialProfile::dense(),
            TemporalProfile::weak(),
            0.35,
            120,
        ),
        "leslie3d" => WorkloadSpec::new(
            "leslie3d",
            896 * MB,
            SpatialProfile::dense(),
            TemporalProfile::moderate(),
            0.30,
            150,
        ),
        "GemsFDTD" => WorkloadSpec::new(
            "GemsFDTD",
            1280 * MB,
            SpatialProfile::dense(),
            TemporalProfile::weak(),
            0.38,
            100,
        ),
        "zeusmp" => WorkloadSpec::new(
            "zeusmp",
            640 * MB,
            SpatialProfile::dense(),
            TemporalProfile::moderate(),
            0.32,
            280,
        ),
        // -------- moderate intensity, mixed utilization --------
        "soplex" => WorkloadSpec::new(
            "soplex",
            512 * MB,
            SpatialProfile::bimodal(),
            TemporalProfile::moderate(),
            0.27,
            200,
        ),
        "sphinx3" => WorkloadSpec::new(
            "sphinx3",
            384 * MB,
            SpatialProfile::bimodal(),
            TemporalProfile::strong(),
            0.15,
            320,
        ),
        "cactusADM" => WorkloadSpec::new(
            "cactusADM",
            512 * MB,
            SpatialProfile::moderate(),
            TemporalProfile::moderate(),
            0.34,
            349,
        ),
        "wrf" => WorkloadSpec::new(
            "wrf",
            448 * MB,
            SpatialProfile::moderate(),
            TemporalProfile::moderate(),
            0.29,
            380,
        ),
        "bwaves" => WorkloadSpec::new(
            "bwaves",
            768 * MB,
            SpatialProfile::moderate(),
            TemporalProfile::weak(),
            0.26,
            210,
        ),
        // -------- low intensity, cache-friendly --------
        "gcc" => WorkloadSpec::new(
            "gcc",
            192 * MB,
            SpatialProfile::bimodal(),
            TemporalProfile::strong(),
            0.31,
            630,
        ),
        "bzip2" => WorkloadSpec::new(
            "bzip2",
            256 * MB,
            SpatialProfile::moderate(),
            TemporalProfile::strong(),
            0.36,
            699,
        ),
        "hmmer" => WorkloadSpec::new(
            "hmmer",
            128 * MB,
            SpatialProfile::dense(),
            TemporalProfile::strong(),
            0.22,
            770,
        ),
        "h264ref" => WorkloadSpec::new(
            "h264ref",
            160 * MB,
            SpatialProfile::moderate(),
            TemporalProfile::strong(),
            0.24,
            840,
        ),
        "gobmk" => WorkloadSpec::new(
            "gobmk",
            128 * MB,
            SpatialProfile::sparse(),
            TemporalProfile::strong(),
            0.27,
            900,
        ),
        _ => return None,
    };
    Some(w)
}

/// All benchmark names with presets, in a stable order.
#[must_use]
pub fn spec_names() -> Vec<&'static str> {
    vec![
        "mcf",
        "omnetpp",
        "astar",
        "xalancbmk",
        "lbm",
        "libquantum",
        "milc",
        "leslie3d",
        "GemsFDTD",
        "zeusmp",
        "soplex",
        "sphinx3",
        "cactusADM",
        "wrf",
        "bwaves",
        "gcc",
        "bzip2",
        "hmmer",
        "h264ref",
        "gobmk",
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_name_has_a_profile() {
        for n in spec_names() {
            let p = spec_profile(n).unwrap_or_else(|| panic!("missing profile for {n}"));
            assert_eq!(p.name, n);
        }
    }

    #[test]
    fn unknown_name_is_none() {
        assert!(spec_profile("doom_eternal").is_none());
    }

    #[test]
    fn suite_spans_intensity_and_utilization() {
        let profiles: Vec<_> = spec_names()
            .iter()
            .map(|n| spec_profile(n).unwrap())
            .collect();
        let intense = profiles.iter().filter(|p| p.is_memory_intensive()).count();
        assert!(intense >= 5, "need memory-bound programs");
        assert!(profiles.len() - intense >= 5, "need compute-bound programs");
        let dense = profiles
            .iter()
            .filter(|p| p.spatial.mean_utilization() > 6.0)
            .count();
        let sparse = profiles
            .iter()
            .filter(|p| p.spatial.mean_utilization() < 3.0)
            .count();
        assert!(dense >= 5 && sparse >= 4, "need the Figure 2 spectrum");
    }

    #[test]
    fn footprints_are_hundreds_of_megabytes() {
        let avg: u64 = spec_names()
            .iter()
            .map(|n| spec_profile(n).unwrap().footprint_bytes)
            .sum::<u64>()
            / spec_names().len() as u64;
        // Paper: quad-core average footprint 990 MB over 4 programs
        // (~250 MB each); ours is in the same range at full scale.
        assert!(avg > 100 * MB && avg < 2048 * MB, "avg {avg}");
    }
}
