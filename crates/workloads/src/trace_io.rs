//! Reading and writing access traces.
//!
//! The paper's design-space results come from a *trace-driven* simulator
//! fed by gem5-collected traces. This module lets users of this crate do
//! the same with their own traces: a minimal self-describing binary
//! format (`BMT1`) holding `(address, write-flag, gap)` records, plus an
//! iterator adapter so file traces plug into the engine anywhere a
//! generated [`crate::ProgramTrace`] would.
//!
//! Record layout (little endian): 8-byte address with the write flag in
//! bit 63, then a 4-byte compute gap.

use std::fs::File;
use std::io::{self, BufReader, BufWriter, Read, Write};
use std::path::Path;

use crate::access::Access;

const MAGIC: &[u8; 4] = b"BMT1";
const WRITE_BIT: u64 = 1 << 63;

/// Writes `accesses` to `path` in the `BMT1` format.
///
/// # Errors
///
/// Returns any I/O error from creating or writing the file, or
/// `InvalidInput` if an address uses bit 63 (reserved for the write flag).
pub fn write_trace<'a>(
    path: impl AsRef<Path>,
    accesses: impl IntoIterator<Item = &'a Access>,
) -> io::Result<u64> {
    let mut w = BufWriter::new(File::create(path)?);
    w.write_all(MAGIC)?;
    let mut count = 0u64;
    for a in accesses {
        if a.addr & WRITE_BIT != 0 {
            return Err(io::Error::new(
                io::ErrorKind::InvalidInput,
                "addresses must leave bit 63 clear",
            ));
        }
        let word = a.addr | if a.is_write { WRITE_BIT } else { 0 };
        w.write_all(&word.to_le_bytes())?;
        let gap = u32::try_from(a.gap.min(u64::from(u32::MAX))).expect("clamped");
        w.write_all(&gap.to_le_bytes())?;
        count += 1;
    }
    w.flush()?;
    Ok(count)
}

/// An iterator over the accesses stored in a `BMT1` trace file.
///
/// # Example
///
/// ```
/// use bimodal_workloads::{read_trace, write_trace, Access};
///
/// # fn main() -> std::io::Result<()> {
/// let path = std::env::temp_dir().join("bimodal-doc-trace.bmt");
/// let trace = vec![Access::read(0x1000, 10), Access::write(0x2040, 25)];
/// write_trace(&path, &trace)?;
/// let back: Vec<Access> = read_trace(&path)?.collect::<Result<_, _>>()?;
/// assert_eq!(back, trace);
/// # std::fs::remove_file(&path)?;
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct FileTrace {
    reader: BufReader<File>,
}

/// Opens a `BMT1` trace file for iteration.
///
/// # Errors
///
/// Returns any I/O error from opening the file, or `InvalidData` if the
/// magic header does not match.
pub fn read_trace(path: impl AsRef<Path>) -> io::Result<FileTrace> {
    let mut reader = BufReader::new(File::open(path)?);
    let mut magic = [0u8; 4];
    reader.read_exact(&mut magic)?;
    if &magic != MAGIC {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            "not a BMT1 trace file",
        ));
    }
    Ok(FileTrace { reader })
}

impl Iterator for FileTrace {
    type Item = io::Result<Access>;

    fn next(&mut self) -> Option<Self::Item> {
        let mut word = [0u8; 8];
        match self.reader.read_exact(&mut word) {
            Ok(()) => {}
            Err(e) if e.kind() == io::ErrorKind::UnexpectedEof => return None,
            Err(e) => return Some(Err(e)),
        }
        let mut gap = [0u8; 4];
        if let Err(e) = self.reader.read_exact(&mut gap) {
            return Some(Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("truncated record: {e}"),
            )));
        }
        let word = u64::from_le_bytes(word);
        Some(Ok(Access {
            addr: word & !WRITE_BIT,
            is_write: word & WRITE_BIT != 0,
            gap: u64::from(u32::from_le_bytes(gap)),
        }))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::program::{SpatialProfile, TemporalProfile, WorkloadSpec};

    fn temp(name: &str) -> std::path::PathBuf {
        std::env::temp_dir().join(format!("bimodal-test-{name}-{}.bmt", std::process::id()))
    }

    #[test]
    fn round_trips_generated_traces() {
        let spec = WorkloadSpec::new(
            "io-test",
            1 << 20,
            SpatialProfile::moderate(),
            TemporalProfile::moderate(),
            0.3,
            100,
        );
        let original: Vec<Access> = spec.trace(3, 0).take(5_000).collect();
        let path = temp("roundtrip");
        let n = write_trace(&path, &original).expect("writes");
        assert_eq!(n, 5_000);
        let back: Vec<Access> = read_trace(&path)
            .expect("opens")
            .collect::<Result<_, _>>()
            .expect("reads");
        std::fs::remove_file(&path).expect("cleanup");
        assert_eq!(back, original);
    }

    #[test]
    fn rejects_wrong_magic() {
        let path = temp("magic");
        std::fs::write(&path, b"NOPE....").expect("writes");
        let err = read_trace(&path).expect_err("must reject");
        std::fs::remove_file(&path).expect("cleanup");
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
    }

    #[test]
    fn rejects_reserved_address_bit() {
        let path = temp("reserved");
        let bad = vec![Access::read(1 << 63, 1)];
        let err = write_trace(&path, &bad).expect_err("must reject");
        assert_eq!(err.kind(), io::ErrorKind::InvalidInput);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn truncated_file_surfaces_an_error() {
        let path = temp("truncated");
        let mut bytes = Vec::new();
        bytes.extend_from_slice(MAGIC);
        bytes.extend_from_slice(&42u64.to_le_bytes());
        bytes.extend_from_slice(&[1, 2]); // half a gap field
        std::fs::write(&path, bytes).expect("writes");
        let items: Vec<_> = read_trace(&path).expect("opens").collect();
        std::fs::remove_file(&path).expect("cleanup");
        assert_eq!(items.len(), 1);
        assert!(items[0].is_err());
    }

    #[test]
    fn empty_trace_is_fine() {
        let path = temp("empty");
        write_trace(&path, &[]).expect("writes");
        let items: Vec<_> = read_trace(&path).expect("opens").collect();
        std::fs::remove_file(&path).expect("cleanup");
        assert!(items.is_empty());
    }
}
