//! Reading and writing access traces.
//!
//! The paper's design-space results come from a *trace-driven* simulator
//! fed by gem5-collected traces. This module lets users of this crate do
//! the same with their own traces: a minimal self-describing binary
//! format (`BMT1`) holding `(address, write-flag, gap)` records, plus an
//! iterator adapter so file traces plug into the engine anywhere a
//! generated [`crate::ProgramTrace`] would.
//!
//! Record layout (little endian): 8-byte address with the write flag in
//! bit 63, then a 4-byte compute gap.

use std::fs::File;
use std::io::{self, BufReader, BufWriter, Read, Write};
use std::path::Path;

use crate::access::Access;

const MAGIC: &[u8; 4] = b"BMT1";
const WRITE_BIT: u64 = 1 << 63;

/// Why a `BMT1` trace could not be written or read.
///
/// Trace files are external input — every malformation maps to a typed
/// variant rather than a panic, so callers (the CLI, fuzzed tests) can
/// report precisely what was wrong with the file.
#[derive(Debug)]
pub enum TraceError {
    /// The underlying filesystem operation failed.
    Io(io::Error),
    /// The file does not start with the `BMT1` magic (or is too short
    /// to hold it).
    NotATrace,
    /// Record `index` was cut off mid-way (the file ends inside a
    /// 12-byte record).
    TruncatedRecord {
        /// Zero-based index of the incomplete record.
        index: u64,
    },
    /// An address to be written uses bit 63, which the format reserves
    /// for the write flag.
    ReservedAddressBit {
        /// The offending address.
        addr: u64,
    },
}

impl std::fmt::Display for TraceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TraceError::Io(e) => write!(f, "trace I/O failed: {e}"),
            TraceError::NotATrace => write!(f, "not a BMT1 trace file"),
            TraceError::TruncatedRecord { index } => {
                write!(f, "trace truncated inside record {index}")
            }
            TraceError::ReservedAddressBit { addr } => {
                write!(
                    f,
                    "address {addr:#x} uses bit 63, reserved for the write flag"
                )
            }
        }
    }
}

impl std::error::Error for TraceError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            TraceError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for TraceError {
    fn from(e: io::Error) -> Self {
        TraceError::Io(e)
    }
}

/// Lets `?` bridge back into `std::io::Result` contexts (the error kind
/// mirrors the old untyped behaviour).
impl From<TraceError> for io::Error {
    fn from(e: TraceError) -> Self {
        match e {
            TraceError::Io(e) => e,
            TraceError::NotATrace | TraceError::TruncatedRecord { .. } => {
                io::Error::new(io::ErrorKind::InvalidData, e.to_string())
            }
            TraceError::ReservedAddressBit { .. } => {
                io::Error::new(io::ErrorKind::InvalidInput, e.to_string())
            }
        }
    }
}

/// Writes `accesses` to `path` in the `BMT1` format.
///
/// # Errors
///
/// [`TraceError::Io`] for filesystem failures,
/// [`TraceError::ReservedAddressBit`] if an address uses bit 63.
pub fn write_trace<'a>(
    path: impl AsRef<Path>,
    accesses: impl IntoIterator<Item = &'a Access>,
) -> Result<u64, TraceError> {
    let mut w = BufWriter::new(File::create(path)?);
    w.write_all(MAGIC)?;
    let mut count = 0u64;
    for a in accesses {
        if a.addr & WRITE_BIT != 0 {
            return Err(TraceError::ReservedAddressBit { addr: a.addr });
        }
        let word = a.addr | if a.is_write { WRITE_BIT } else { 0 };
        w.write_all(&word.to_le_bytes())?;
        let gap = u32::try_from(a.gap.min(u64::from(u32::MAX))).expect("clamped");
        w.write_all(&gap.to_le_bytes())?;
        count += 1;
    }
    w.flush()?;
    Ok(count)
}

/// An iterator over the accesses stored in a `BMT1` trace file.
///
/// # Example
///
/// ```
/// use bimodal_workloads::{read_trace, write_trace, Access};
///
/// # fn main() -> std::io::Result<()> {
/// let path = std::env::temp_dir().join("bimodal-doc-trace.bmt");
/// let trace = vec![Access::read(0x1000, 10), Access::write(0x2040, 25)];
/// write_trace(&path, &trace)?;
/// let back: Vec<Access> = read_trace(&path)?.collect::<Result<_, _>>()?;
/// assert_eq!(back, trace);
/// # std::fs::remove_file(&path)?;
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct FileTrace {
    reader: BufReader<File>,
    records: u64,
    /// Block-decoded accesses (amortizes the per-record read + parse over
    /// [`BLOCK_RECORDS`] records at a time).
    block: Vec<Access>,
    /// Consumption cursor into `block`.
    pos: usize,
    /// Error to surface once the decoded block drains (errors are always
    /// terminal: nothing past a truncation or I/O failure is trusted).
    terminal: Option<TraceError>,
    /// No more bytes to read (EOF or terminal error already queued).
    done: bool,
}

/// Records decoded per block read (12 B each → 6 KB reads).
const BLOCK_RECORDS: usize = 512;

/// Opens a `BMT1` trace file for iteration.
///
/// # Errors
///
/// [`TraceError::Io`] for filesystem failures, [`TraceError::NotATrace`]
/// when the magic header is missing or wrong.
pub fn read_trace(path: impl AsRef<Path>) -> Result<FileTrace, TraceError> {
    let mut reader = BufReader::new(File::open(path)?);
    let mut magic = [0u8; 4];
    match reader.read_exact(&mut magic) {
        Ok(()) => {}
        // A file too short for the header is not a trace either.
        Err(e) if e.kind() == io::ErrorKind::UnexpectedEof => return Err(TraceError::NotATrace),
        Err(e) => return Err(TraceError::Io(e)),
    }
    if &magic != MAGIC {
        return Err(TraceError::NotATrace);
    }
    Ok(FileTrace {
        reader,
        records: 0,
        block: Vec::new(),
        pos: 0,
        terminal: None,
        done: false,
    })
}

/// Reads until `buf` is full or EOF; returns the bytes read. Unlike
/// `read_exact`, a partial fill is reported as its length, so a file
/// ending one byte into a record is distinguishable from a clean end.
fn read_full(r: &mut impl Read, buf: &mut [u8]) -> io::Result<usize> {
    let mut n = 0;
    while n < buf.len() {
        match r.read(&mut buf[n..]) {
            Ok(0) => break,
            Ok(k) => n += k,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(e) => return Err(e),
        }
    }
    Ok(n)
}

impl FileTrace {
    /// Reads one block's worth of raw bytes and decodes every complete
    /// record in it; queues a terminal error for any partial tail.
    fn refill(&mut self) {
        self.block.clear();
        self.pos = 0;
        let mut raw = [0u8; BLOCK_RECORDS * 12];
        let n = match read_full(&mut self.reader, &mut raw) {
            Ok(n) => n,
            Err(e) => {
                self.terminal = Some(TraceError::Io(e));
                self.done = true;
                return;
            }
        };
        for rec in raw[..n - n % 12].chunks_exact(12) {
            let word = u64::from_le_bytes(rec[..8].try_into().expect("8 bytes"));
            let gap = u32::from_le_bytes(rec[8..].try_into().expect("4 bytes"));
            self.block.push(Access {
                addr: word & !WRITE_BIT,
                is_write: word & WRITE_BIT != 0,
                gap: u64::from(gap),
            });
        }
        self.records += self.block.len() as u64;
        if n % 12 != 0 {
            // A partial read of read_full means EOF mid-record.
            self.terminal = Some(TraceError::TruncatedRecord {
                index: self.records,
            });
            self.done = true;
        } else if n < raw.len() {
            self.done = true;
        }
    }
}

impl Iterator for FileTrace {
    type Item = Result<Access, TraceError>;

    fn next(&mut self) -> Option<Self::Item> {
        if self.pos == self.block.len() {
            if self.done {
                return self.terminal.take().map(Err);
            }
            self.refill();
            if self.block.is_empty() {
                return self.terminal.take().map(Err);
            }
        }
        let a = self.block[self.pos];
        self.pos += 1;
        Some(Ok(a))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::program::{SpatialProfile, TemporalProfile, WorkloadSpec};

    fn temp(name: &str) -> std::path::PathBuf {
        std::env::temp_dir().join(format!("bimodal-test-{name}-{}.bmt", std::process::id()))
    }

    #[test]
    fn round_trips_generated_traces() {
        let spec = WorkloadSpec::new(
            "io-test",
            1 << 20,
            SpatialProfile::moderate(),
            TemporalProfile::moderate(),
            0.3,
            100,
        );
        let original: Vec<Access> = spec.trace(3, 0).take(5_000).collect();
        let path = temp("roundtrip");
        let n = write_trace(&path, &original).expect("writes");
        assert_eq!(n, 5_000);
        let back: Vec<Access> = read_trace(&path)
            .expect("opens")
            .collect::<Result<_, _>>()
            .expect("reads");
        std::fs::remove_file(&path).expect("cleanup");
        assert_eq!(back, original);
    }

    #[test]
    fn rejects_wrong_magic() {
        let path = temp("magic");
        std::fs::write(&path, b"NOPE....").expect("writes");
        let err = read_trace(&path).expect_err("must reject");
        std::fs::remove_file(&path).expect("cleanup");
        assert!(matches!(err, TraceError::NotATrace));
        // The io::Error bridge keeps the historical kind.
        assert_eq!(io::Error::from(err).kind(), io::ErrorKind::InvalidData);
    }

    #[test]
    fn too_short_for_a_header_is_not_a_trace() {
        let path = temp("short");
        std::fs::write(&path, b"BM").expect("writes");
        let err = read_trace(&path).expect_err("must reject");
        std::fs::remove_file(&path).expect("cleanup");
        assert!(matches!(err, TraceError::NotATrace));
    }

    #[test]
    fn rejects_reserved_address_bit() {
        let path = temp("reserved");
        let bad = vec![Access::read(1 << 63, 1)];
        let err = write_trace(&path, &bad).expect_err("must reject");
        let _ = std::fs::remove_file(&path);
        assert!(matches!(
            err,
            TraceError::ReservedAddressBit { addr } if addr == 1 << 63
        ));
        assert_eq!(io::Error::from(err).kind(), io::ErrorKind::InvalidInput);
    }

    #[test]
    fn truncated_file_surfaces_an_error() {
        let path = temp("truncated");
        let mut bytes = Vec::new();
        bytes.extend_from_slice(MAGIC);
        bytes.extend_from_slice(&42u64.to_le_bytes());
        bytes.extend_from_slice(&[1, 2]); // half a gap field
        std::fs::write(&path, bytes).expect("writes");
        let items: Vec<_> = read_trace(&path).expect("opens").collect();
        std::fs::remove_file(&path).expect("cleanup");
        assert_eq!(items.len(), 1);
        assert!(matches!(
            items[0],
            Err(TraceError::TruncatedRecord { index: 0 })
        ));
    }

    #[test]
    fn truncation_after_good_records_reports_their_count() {
        let path = temp("tail-truncated");
        let good = [Access::read(0x40, 1), Access::write(0x80, 2)];
        let mut bytes = Vec::new();
        bytes.extend_from_slice(MAGIC);
        for a in &good {
            let word = a.addr | if a.is_write { WRITE_BIT } else { 0 };
            bytes.extend_from_slice(&word.to_le_bytes());
            bytes.extend_from_slice(&2u32.to_le_bytes());
        }
        bytes.extend_from_slice(&[0xAB; 5]); // partial third record
        std::fs::write(&path, bytes).expect("writes");
        let items: Vec<_> = read_trace(&path).expect("opens").collect();
        std::fs::remove_file(&path).expect("cleanup");
        assert_eq!(items.len(), 3);
        assert!(items[0].is_ok() && items[1].is_ok());
        assert!(matches!(
            items[2],
            Err(TraceError::TruncatedRecord { index: 2 })
        ));
    }

    /// Fuzz-ish property test: seeded random byte garbage — raw, and
    /// with a valid `BMT1` prefix spliced on — must never panic the
    /// reader; every outcome is a typed error or a clean parse.
    #[test]
    fn random_garbage_never_panics_the_reader() {
        use bimodal_prng::SmallRng;
        let path = temp("garbage");
        for seed in 0..64u64 {
            let mut rng = SmallRng::seed_from_u64(seed);
            let len = rng.gen_range(0usize..200);
            let mut bytes: Vec<u8> = (0..len).map(|_| rng.gen_range(0u32..256) as u8).collect();
            if seed.is_multiple_of(2) {
                // Half the corpus gets a valid header so the record
                // parser (not just the magic check) gets exercised.
                let mut with_magic = MAGIC.to_vec();
                with_magic.append(&mut bytes);
                bytes = with_magic;
            }
            std::fs::write(&path, &bytes).expect("writes");
            match read_trace(&path) {
                Ok(trace) => {
                    // Full iteration: records parse or error, no panic,
                    // and errors only ever appear as the final item.
                    let items: Vec<_> = trace.collect();
                    let body = bytes.len() - MAGIC.len();
                    assert_eq!(items.len(), body.div_ceil(12));
                    for (i, item) in items.iter().enumerate() {
                        match item {
                            Ok(a) => assert_eq!(a.addr & WRITE_BIT, 0),
                            Err(e) => {
                                assert_eq!(i, items.len() - 1, "error must be terminal");
                                assert!(matches!(e, TraceError::TruncatedRecord { .. }));
                            }
                        }
                    }
                }
                Err(e) => assert!(matches!(e, TraceError::NotATrace | TraceError::Io(_))),
            }
        }
        std::fs::remove_file(&path).expect("cleanup");
    }

    #[test]
    fn empty_trace_is_fine() {
        let path = temp("empty");
        write_trace(&path, &[]).expect("writes");
        let items: Vec<_> = read_trace(&path).expect("opens").collect();
        std::fs::remove_file(&path).expect("cleanup");
        assert!(items.is_empty());
    }
}
