//! The unit of a workload trace.

/// One LLSC-miss event produced by a program.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Access {
    /// Physical byte address (64 B aligned).
    pub addr: u64,
    /// Whether this is a writeback into the DRAM cache.
    pub is_write: bool,
    /// Compute cycles the core spends before issuing this access.
    pub gap: u64,
}

impl Access {
    /// A read access.
    #[must_use]
    pub fn read(addr: u64, gap: u64) -> Self {
        Access {
            addr,
            is_write: false,
            gap,
        }
    }

    /// A write access.
    #[must_use]
    pub fn write(addr: u64, gap: u64) -> Self {
        Access {
            addr,
            is_write: true,
            gap,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors() {
        assert!(!Access::read(0, 1).is_write);
        assert!(Access::write(0, 1).is_write);
    }
}
