//! Synthetic SPEC-like workloads for DRAM cache studies.
//!
//! The paper drives its design-space simulator with traces from SPEC
//! CPU2000/2006 mixes (Table V). Those traces are not redistributable, so
//! this crate synthesizes per-core LLSC-miss streams whose three
//! properties — the ones every result in the paper depends on — are
//! controlled explicitly:
//!
//! 1. **Spatial utilization**: the distribution of how many 64 B
//!    sub-blocks of each 512 B region a program touches (Figure 2's
//!    spectrum, from >90% fully-used regions down to <30%).
//! 2. **Footprint vs. cache size**: how much distinct data the program
//!    walks, driving capacity misses.
//! 3. **Temporal locality and intensity**: how often recent regions are
//!    revisited and how frequently LLSC misses arrive.
//!
//! [`WorkloadSpec`] holds the knobs, [`spec_profile`] provides named
//! SPEC-flavoured presets, and [`WorkloadMix`] assembles the Q1–Q24
//! (4-core), E1–E16 (8-core) and S1–S8 (16-core) multiprogrammed mixes.
//!
//! # Example
//!
//! ```
//! use bimodal_workloads::{spec_profile, WorkloadMix};
//!
//! let mcf = spec_profile("mcf").expect("known benchmark");
//! let mut trace = mcf.trace(42, 0);
//! let first = trace.next().expect("traces are endless");
//! assert!(first.addr < mcf.footprint_bytes);
//!
//! let q1 = WorkloadMix::quad("Q1").expect("known mix");
//! assert_eq!(q1.programs().len(), 4);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod access;
mod mix;
mod program;
mod spec;
mod trace_io;

pub use access::Access;
pub use mix::{all_eight_core, all_quad, all_sixteen_core, WorkloadMix};
pub use program::{ProgramTrace, SpatialProfile, TemporalProfile, WorkloadSpec};
pub use spec::{spec_names, spec_profile};
pub use trace_io::{read_trace, write_trace, FileTrace, TraceError};
