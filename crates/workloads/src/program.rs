//! The parameterized synthetic program generator.

use bimodal_ckpt::{CkptError, Snapshot, SnapshotReader, SnapshotWriter};
use bimodal_prng::SmallRng;

use crate::access::Access;

/// Region size used for spatial-utilization control: the paper studies
/// utilization of 64 B sub-blocks within 512 B blocks (Figure 2).
const REGION_BYTES: u64 = 512;
/// Sub-blocks per region.
const SUBS: usize = 8;

/// Distribution over how many of a region's eight 64 B sub-blocks the
/// program touches.
///
/// Index `i` of the weight array is the probability weight of touching
/// `i + 1` sub-blocks.
/// # Example
///
/// ```
/// use bimodal_workloads::SpatialProfile;
///
/// assert!(SpatialProfile::dense().mean_utilization() > 7.0);
/// assert!(SpatialProfile::sparse().mean_utilization() < 3.0);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct SpatialProfile {
    weights: [f64; SUBS],
}

impl SpatialProfile {
    /// Builds a profile from weights for 1..=8 touched sub-blocks.
    ///
    /// # Panics
    ///
    /// Panics if all weights are zero or any is negative.
    #[must_use]
    pub fn new(weights: [f64; SUBS]) -> Self {
        assert!(
            weights.iter().all(|&w| w >= 0.0),
            "weights must be non-negative"
        );
        assert!(
            weights.iter().sum::<f64>() > 0.0,
            "some weight must be positive"
        );
        SpatialProfile { weights }
    }

    /// Dense spatial locality: ~90% of regions fully used (like Q2/Q4/Q5
    /// in Figure 2).
    #[must_use]
    pub fn dense() -> Self {
        SpatialProfile::new([0.01, 0.01, 0.01, 0.02, 0.02, 0.04, 0.09, 0.80])
    }

    /// Sparse: most regions see only one or two lines (like Q7/Q8/Q23).
    #[must_use]
    pub fn sparse() -> Self {
        SpatialProfile::new([0.52, 0.20, 0.05, 0.03, 0.02, 0.03, 0.05, 0.10])
    }

    /// Moderate: U-shaped like the paper's Figure 2, with a modest middle
    /// band (the paper reports ~18% of blocks in the 2..7 range on
    /// average — real utilization is strongly bimodal).
    #[must_use]
    pub fn moderate() -> Self {
        SpatialProfile::new([0.25, 0.08, 0.05, 0.05, 0.06, 0.06, 0.10, 0.35])
    }

    /// Bi-modal: a mix of fully-used and single-line regions — the case
    /// the Bi-Modal cache is built for.
    #[must_use]
    pub fn bimodal() -> Self {
        SpatialProfile::new([0.40, 0.05, 0.02, 0.01, 0.01, 0.02, 0.04, 0.45])
    }

    /// Maps a uniform fraction in `[0, 1)` to a sub-block count (1..=8).
    fn sample_fraction(&self, fraction: f64) -> usize {
        let total: f64 = self.weights.iter().sum();
        let mut x = fraction * total;
        for (i, &w) in self.weights.iter().enumerate() {
            if x < w {
                return i + 1;
            }
            x -= w;
        }
        SUBS
    }

    /// Expected number of touched sub-blocks.
    #[must_use]
    pub fn mean_utilization(&self) -> f64 {
        let total: f64 = self.weights.iter().sum();
        self.weights
            .iter()
            .enumerate()
            .map(|(i, &w)| (i + 1) as f64 * w / total)
            .sum()
    }
}

/// Temporal-reuse behaviour.
///
/// The hot set is a *fraction of the footprint* rather than an absolute
/// size, so scaling a workload down (together with the cache) preserves
/// the capacity pressure that drives hit-rate results.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TemporalProfile {
    /// Probability that the next region visited is a recently used one.
    pub reuse_prob: f64,
    /// Hot-set size as a fraction of the footprint's regions.
    pub hot_fraction: f64,
    /// Absolute cap on the hot set, in regions. Hot working sets are
    /// megabyte-scale structures; footprints can be gigabytes. Without the
    /// cap, large-footprint programs would spread their reuse so thin that
    /// no cache could capture it.
    pub hot_cap_regions: u64,
}

impl TemporalProfile {
    /// Strong reuse: a large hot working set revisited often
    /// (cache- and way-locator-friendly).
    #[must_use]
    pub fn strong() -> Self {
        TemporalProfile {
            reuse_prob: 0.85,
            hot_fraction: 1.0 / 3.0,
            hot_cap_regions: 8192,
        }
    }

    /// Moderate reuse.
    #[must_use]
    pub fn moderate() -> Self {
        TemporalProfile {
            reuse_prob: 0.70,
            hot_fraction: 1.0 / 4.0,
            hot_cap_regions: 4096,
        }
    }

    /// Weak reuse: streaming-like, smaller hot set.
    #[must_use]
    pub fn weak() -> Self {
        TemporalProfile {
            reuse_prob: 0.50,
            hot_fraction: 1.0 / 6.0,
            hot_cap_regions: 2048,
        }
    }

    /// Hot-set size in regions for a footprint of `n_regions`.
    #[must_use]
    pub fn hot_regions(&self, n_regions: u64) -> usize {
        let frac = (n_regions as f64 * self.hot_fraction) as u64;
        usize::try_from(frac.min(self.hot_cap_regions).clamp(64, n_regions))
            .expect("hot set fits usize")
    }
}

/// Full description of one synthetic program.
#[derive(Debug, Clone, PartialEq)]
pub struct WorkloadSpec {
    /// Benchmark name (SPEC-flavoured).
    pub name: String,
    /// Distinct bytes the program walks.
    pub footprint_bytes: u64,
    /// Spatial utilization distribution.
    pub spatial: SpatialProfile,
    /// Temporal reuse behaviour.
    pub temporal: TemporalProfile,
    /// Fraction of accesses that are writes.
    pub write_fraction: f64,
    /// Mean compute cycles between LLSC misses (memory intensity: lower is
    /// more intense).
    pub mean_gap: u64,
}

impl WorkloadSpec {
    /// Builds a spec.
    ///
    /// # Panics
    ///
    /// Panics if the footprint holds no region or fractions are out of
    /// range.
    #[must_use]
    pub fn new(
        name: impl Into<String>,
        footprint_bytes: u64,
        spatial: SpatialProfile,
        temporal: TemporalProfile,
        write_fraction: f64,
        mean_gap: u64,
    ) -> Self {
        assert!(
            footprint_bytes >= REGION_BYTES,
            "footprint must hold a region"
        );
        assert!(
            (0.0..=1.0).contains(&write_fraction),
            "write fraction in [0,1]"
        );
        assert!(
            (0.0..=1.0).contains(&temporal.reuse_prob),
            "reuse prob in [0,1]"
        );
        WorkloadSpec {
            name: name.into(),
            footprint_bytes,
            spatial,
            temporal,
            write_fraction,
            mean_gap: mean_gap.max(1),
        }
    }

    /// Is this a high-memory-intensity program (Table V's `*` marker)?
    #[must_use]
    pub fn is_memory_intensive(&self) -> bool {
        self.mean_gap <= 250
    }

    /// Scales the footprint (used to match scaled-down cache sizes).
    #[must_use]
    pub fn with_footprint_scale(mut self, scale: f64) -> Self {
        assert!(scale > 0.0, "scale must be positive");
        let scaled = (self.footprint_bytes as f64 * scale) as u64;
        self.footprint_bytes = scaled.max(REGION_BYTES).next_power_of_two();
        self
    }

    /// Creates the endless access stream of this program.
    ///
    /// `core` selects a disjoint address-space slice (multiprogrammed
    /// workloads do not share data), and together with `seed` makes the
    /// stream deterministic.
    #[must_use]
    pub fn trace(&self, seed: u64, core: u32) -> ProgramTrace {
        ProgramTrace::new(self.clone(), seed, core)
    }
}

/// The endless, deterministic access stream of one program.
#[derive(Debug, Clone)]
pub struct ProgramTrace {
    spec: WorkloadSpec,
    rng: SmallRng,
    base: u64,
    n_regions: u64,
    /// Scan pointer (region ordinal).
    cursor: u64,
    /// Small window of the most recent regions (immediate reuse).
    recent: std::collections::VecDeque<u64>,
    /// Monotonic visit counter (drives slowly-rotating line choices).
    visit_serial: u64,
    /// Lines queued from the current region visit.
    pending: Vec<u64>,
    /// Consumption cursor into `pending` (popping from the front of a Vec
    /// is O(n); the cursor makes consumption O(1) and lets `refill` reuse
    /// the allocation).
    pending_pos: usize,
}

impl ProgramTrace {
    fn new(spec: WorkloadSpec, seed: u64, core: u32) -> Self {
        let rng = SmallRng::seed_from_u64(
            seed ^ (u64::from(core) << 32) ^ spec.name.bytes().map(u64::from).sum::<u64>(),
        );
        let n_regions = spec.footprint_bytes / REGION_BYTES;
        ProgramTrace {
            base: u64::from(core) << 36,
            n_regions,
            cursor: 0,
            recent: std::collections::VecDeque::new(),
            visit_serial: 0,
            pending: Vec::new(),
            pending_pos: 0,
            spec,
            rng,
        }
    }

    /// The spec this trace was generated from.
    #[must_use]
    pub fn spec(&self) -> &WorkloadSpec {
        &self.spec
    }

    /// Picks the next region to visit and queues its line addresses.
    ///
    /// Temporal reuse has two components, as in real programs: immediate
    /// reuse of the last few regions (line-level recency every cache
    /// exploits) and revisits to a *stable* hot set — a strided subset of
    /// the footprint representing the structures the program loops over.
    /// Whether that hot set fits in the cache is a property of the
    /// workload, which is what makes capacity (and block granularity)
    /// matter.
    fn refill(&mut self) {
        self.visit_serial += 1;
        let hot = self.spec.temporal.hot_regions(self.n_regions) as u64;
        let u: f64 = self.rng.gen_range(0.0..1.0);
        let reuse = self.spec.temporal.reuse_prob;
        let region = if u < reuse * 0.4 && !self.recent.is_empty() {
            // Immediate reuse of a very recent region.
            self.recent[self.rng.gen_range(0..self.recent.len())]
        } else if u < reuse {
            // Revisit the static hot set: a stable pseudo-random subset
            // of the footprint. The odd-multiplier permutation spreads hot
            // regions uniformly across cache sets (a fixed stride would
            // alias with power-of-two set indexing).
            let k = self.rng.gen_range(0..hot);
            k.wrapping_mul(0x9E37_79B9_7F4A_7C15) & (self.n_regions - 1)
        } else {
            // Advance the scan, with occasional random jumps so the
            // footprint is walked non-uniformly.
            if self.rng.gen_bool(0.05) {
                self.cursor = self.rng.gen_range(0..self.n_regions);
            } else {
                self.cursor = (self.cursor + 1) % self.n_regions;
            }
            self.cursor
        };
        self.recent.push_back(region);
        if self.recent.len() > 32 {
            self.recent.pop_front();
        }

        // A region's utilization is a stable property of its data (real
        // structures have fixed layouts), and it is spatially correlated:
        // a sparse structure spans many consecutive regions. Utilization
        // is therefore drawn per 32-region (16 KB) chunk, while the choice
        // of sub-blocks rotates per region, so revisits touch the same
        // lines and neighbours behave alike.
        let chunk = region >> 5;
        let hc = chunk.wrapping_mul(0x9E37_79B9_7F4A_7C15);
        let fraction = (hc >> 11) as f64 / (1u64 << 53) as f64;
        let count = self.spec.spatial.sample_fraction(fraction);
        let rot = (region.wrapping_mul(0xD1B5_4A32_D192_ED03) >> 32) as usize % SUBS;
        let region_base = self.base + region * REGION_BYTES;
        if count >= 4 {
            // Spatially dense data is walked sequentially: the whole
            // footprint of the region streams by in one burst.
            for k in 0..count {
                let sub = (rot + k) % SUBS;
                self.pending.push(region_base + (sub as u64) * 64);
            }
        } else {
            // Sparse data (pointer chasing) touches one line per visit.
            // Most visits land on the region's primary line (a node's hot
            // field); the secondary lines are reached on occasional hops,
            // so the full footprint accumulates across revisits.
            let k = if count == 1 || self.rng.gen_bool(0.7) {
                0
            } else {
                self.rng.gen_range(1..count)
            };
            let sub = (rot + k) % SUBS;
            self.pending.push(region_base + (sub as u64) * 64);
        }
    }

    /// Serializes the trace's mutable cursor state (generator stream,
    /// scan position, recency window, queued lines) for a checkpoint. The
    /// spec itself is not stored — resume rebuilds the trace from the same
    /// mix and seed — but its identity is, as a guard against resuming
    /// with the wrong workload.
    pub fn save_state(&self, w: &mut SnapshotWriter) {
        w.str(&self.spec.name);
        w.u64(self.spec.footprint_bytes);
        w.u64(self.base);
        self.rng.state().save(w);
        w.u64(self.cursor);
        self.recent.save(w);
        w.u64(self.visit_serial);
        // Only the unconsumed tail matters; writing it (rather than the
        // raw buffer plus the cursor) keeps the wire shape a plain vector.
        self.pending[self.pending_pos..].to_vec().save(w);
    }

    /// Restores cursor state saved by [`ProgramTrace::save_state`] into a
    /// freshly built trace of the same spec/seed/core.
    ///
    /// # Errors
    ///
    /// [`CkptError::Mismatch`] when the snapshot belongs to a different
    /// program or core; decode errors on truncated/corrupt payloads.
    pub fn load_state(&mut self, r: &mut SnapshotReader<'_>) -> Result<(), CkptError> {
        let name = r.str()?;
        let footprint = r.u64()?;
        let base = r.u64()?;
        if name != self.spec.name || footprint != self.spec.footprint_bytes || base != self.base {
            return Err(CkptError::Mismatch {
                detail: format!(
                    "trace snapshot is for '{name}' ({footprint} B, base {base:#x}); \
                     this run uses '{}' ({} B, base {:#x})",
                    self.spec.name, self.spec.footprint_bytes, self.base
                ),
            });
        }
        let s = <[u64; 4]>::load(r)?;
        if s == [0; 4] {
            return Err(r.corrupt("all-zero rng state"));
        }
        let cursor = r.u64()?;
        if cursor >= self.n_regions {
            return Err(r.corrupt(format!(
                "cursor {cursor} out of range ({} regions)",
                self.n_regions
            )));
        }
        self.rng = SmallRng::from_state(s);
        self.cursor = cursor;
        self.recent = Snapshot::load(r)?;
        self.visit_serial = r.u64()?;
        self.pending = Snapshot::load(r)?;
        self.pending_pos = 0;
        Ok(())
    }

    fn sample_gap(&mut self) -> u64 {
        // A skewed (geometric-ish) gap around the mean.
        let mean = self.spec.mean_gap as f64;
        let u: f64 = self.rng.gen_range(0.0_f64..1.0).max(1e-9);
        (-mean * u.ln()).min(mean * 8.0) as u64
    }

    #[inline]
    fn next_access(&mut self) -> Access {
        if self.pending_pos == self.pending.len() {
            self.pending.clear();
            self.pending_pos = 0;
            self.refill();
        }
        let addr = self.pending[self.pending_pos];
        self.pending_pos += 1;
        let is_write = self.rng.gen_bool(self.spec.write_fraction);
        let gap = self.sample_gap();
        Access {
            addr,
            is_write,
            gap,
        }
    }

    /// Decodes the next `n` accesses into `out` in one batch.
    ///
    /// Draws exactly the same PRNG sequence as `n` calls to `next`, so a
    /// block-decoded stream is access-for-access identical to the
    /// one-at-a-time stream — the property the sharded engine's
    /// bit-identity guarantee rests on.
    pub fn next_block(&mut self, n: usize, out: &mut Vec<Access>) {
        out.reserve(n);
        for _ in 0..n {
            out.push(self.next_access());
        }
    }
}

impl Iterator for ProgramTrace {
    type Item = Access;

    fn next(&mut self) -> Option<Access> {
        Some(self.next_access())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec() -> WorkloadSpec {
        WorkloadSpec::new(
            "test",
            1 << 20,
            SpatialProfile::moderate(),
            TemporalProfile::moderate(),
            0.3,
            100,
        )
    }

    #[test]
    fn trace_state_round_trips_through_snapshot() {
        let mut t = spec().trace(7, 0);
        for _ in 0..500 {
            t.next();
        }
        let mut w = SnapshotWriter::new();
        t.save_state(&mut w);
        let bytes = w.into_bytes();
        let mut fresh = spec().trace(7, 0);
        let mut r = SnapshotReader::new(&bytes, "traces");
        fresh.load_state(&mut r).unwrap();
        assert!(r.is_exhausted());
        let a: Vec<_> = t.take(2_000).collect();
        let b: Vec<_> = fresh.take(2_000).collect();
        assert_eq!(a, b);
    }

    #[test]
    fn trace_state_rejects_wrong_program() {
        let mut t = spec().trace(7, 0);
        for _ in 0..10 {
            t.next();
        }
        let mut w = SnapshotWriter::new();
        t.save_state(&mut w);
        let bytes = w.into_bytes();
        // Different core → different base address slice.
        let mut other = spec().trace(7, 1);
        let mut r = SnapshotReader::new(&bytes, "traces");
        assert!(matches!(
            other.load_state(&mut r),
            Err(CkptError::Mismatch { .. })
        ));
    }

    #[test]
    fn block_decode_matches_one_at_a_time() {
        let mut blocked = spec().trace(7, 0);
        let mut buf = Vec::new();
        // Ragged block sizes so boundaries land mid-region-visit.
        for n in [1usize, 7, 64, 3, 512, 113] {
            blocked.next_block(n, &mut buf);
        }
        let serial: Vec<_> = spec().trace(7, 0).take(buf.len()).collect();
        assert_eq!(buf, serial);
    }

    #[test]
    fn snapshot_mid_block_resumes_identically() {
        // Save while the pending cursor sits mid-buffer: the snapshot must
        // carry only the unconsumed tail and resume access-for-access.
        let mut t = spec().trace(9, 0);
        let mut buf = Vec::new();
        t.next_block(777, &mut buf);
        let mut w = SnapshotWriter::new();
        t.save_state(&mut w);
        let bytes = w.into_bytes();
        let mut fresh = spec().trace(9, 0);
        let mut r = SnapshotReader::new(&bytes, "traces");
        fresh.load_state(&mut r).unwrap();
        let mut a = Vec::new();
        t.next_block(500, &mut a);
        let b: Vec<_> = fresh.take(500).collect();
        assert_eq!(a, b);
    }

    #[test]
    fn traces_are_deterministic() {
        let a: Vec<_> = spec().trace(7, 0).take(1000).collect();
        let b: Vec<_> = spec().trace(7, 0).take(1000).collect();
        assert_eq!(a, b);
    }

    #[test]
    fn different_seeds_differ() {
        let a: Vec<_> = spec().trace(7, 0).take(100).collect();
        let b: Vec<_> = spec().trace(8, 0).take(100).collect();
        assert_ne!(a, b);
    }

    #[test]
    fn cores_use_disjoint_address_slices() {
        let a: Vec<_> = spec().trace(7, 0).take(100).collect();
        let b: Vec<_> = spec().trace(7, 1).take(100).collect();
        assert!(a.iter().all(|x| x.addr < 1 << 36));
        assert!(b.iter().all(|x| x.addr >= 1 << 36 && x.addr < 2 << 36));
    }

    #[test]
    fn addresses_stay_in_footprint() {
        let s = spec();
        for a in s.trace(3, 0).take(10_000) {
            assert!(a.addr < s.footprint_bytes);
            assert_eq!(a.addr % 64, 0, "accesses are line aligned");
        }
    }

    #[test]
    fn write_fraction_is_respected() {
        let writes = spec()
            .trace(1, 0)
            .take(20_000)
            .filter(|a| a.is_write)
            .count();
        let frac = writes as f64 / 20_000.0;
        assert!((frac - 0.3).abs() < 0.05, "got {frac}");
    }

    #[test]
    fn dense_profile_touches_more_lines_per_region() {
        let count_distinct_per_region = |p: SpatialProfile| {
            let s = WorkloadSpec::new("x", 1 << 22, p, TemporalProfile::weak(), 0.0, 10);
            let mut per_region: std::collections::HashMap<u64, std::collections::HashSet<u64>> =
                std::collections::HashMap::new();
            for a in s.trace(5, 0).take(50_000) {
                per_region
                    .entry(a.addr / 512)
                    .or_default()
                    .insert(a.addr / 64);
            }
            let total: usize = per_region
                .values()
                .map(std::collections::HashSet::len)
                .sum();
            total as f64 / per_region.len() as f64
        };
        let dense = count_distinct_per_region(SpatialProfile::dense());
        let sparse = count_distinct_per_region(SpatialProfile::sparse());
        assert!(
            dense > 5.0,
            "dense regions should use most lines, got {dense}"
        );
        assert!(
            sparse < 3.0,
            "sparse regions should use few lines, got {sparse}"
        );
    }

    #[test]
    fn mean_utilization_orders_profiles() {
        assert!(SpatialProfile::dense().mean_utilization() > 7.0);
        assert!(SpatialProfile::sparse().mean_utilization() < 3.0);
        let bm = SpatialProfile::bimodal().mean_utilization();
        assert!(bm > 3.0 && bm < 6.0);
    }

    #[test]
    fn gaps_average_near_mean() {
        let total: u64 = spec().trace(2, 0).take(50_000).map(|a| a.gap).sum();
        let avg = total as f64 / 50_000.0;
        assert!((avg / 100.0 - 1.0).abs() < 0.3, "got {avg}");
    }

    #[test]
    fn footprint_scale_rounds_to_power_of_two() {
        let s = spec().with_footprint_scale(0.4);
        assert!(s.footprint_bytes.is_power_of_two());
    }

    #[test]
    fn intensity_flag() {
        let mut s = spec();
        s.mean_gap = 100;
        assert!(s.is_memory_intensive());
        s.mean_gap = 1000;
        assert!(!s.is_memory_intensive());
    }

    #[test]
    #[should_panic(expected = "write fraction")]
    fn bad_write_fraction_panics() {
        let _ = WorkloadSpec::new(
            "bad",
            1 << 20,
            SpatialProfile::dense(),
            TemporalProfile::weak(),
            1.5,
            100,
        );
    }
}
