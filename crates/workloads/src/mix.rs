//! Multiprogrammed workload mixes (the paper's Table V).
//!
//! Q1–Q24 are 4-core mixes, E1–E16 are 8-core mixes, and S1–S8 are
//! 16-core mixes, combined — like the paper — to cover high, moderate and
//! low memory intensity. Mix membership is generated from a fixed rotation
//! over the benchmark suite so the full suite appears across the mixes and
//! each mix is deterministic.

use crate::program::WorkloadSpec;
use crate::spec::{spec_names, spec_profile};

/// A named multiprogrammed mix: one program per core.
#[derive(Debug, Clone, PartialEq)]
pub struct WorkloadMix {
    name: String,
    programs: Vec<WorkloadSpec>,
}

impl WorkloadMix {
    /// Builds a mix from explicit programs.
    ///
    /// # Panics
    ///
    /// Panics if `programs` is empty.
    #[must_use]
    pub fn from_programs(name: impl Into<String>, programs: Vec<WorkloadSpec>) -> Self {
        assert!(!programs.is_empty(), "a mix needs at least one program");
        WorkloadMix {
            name: name.into(),
            programs,
        }
    }

    /// The 4-core mix `Q1`..`Q24`, or `None` for unknown names.
    #[must_use]
    pub fn quad(name: &str) -> Option<Self> {
        let idx: usize = name.strip_prefix('Q')?.parse().ok()?;
        if !(1..=24).contains(&idx) {
            return None;
        }
        Some(Self::rotate(name, idx, 4))
    }

    /// The 8-core mix `E1`..`E16`.
    #[must_use]
    pub fn eight(name: &str) -> Option<Self> {
        let idx: usize = name.strip_prefix('E')?.parse().ok()?;
        if !(1..=16).contains(&idx) {
            return None;
        }
        Some(Self::rotate(name, idx, 8))
    }

    /// The 16-core mix `S1`..`S8`.
    #[must_use]
    pub fn sixteen(name: &str) -> Option<Self> {
        let idx: usize = name.strip_prefix('S')?.parse().ok()?;
        if !(1..=8).contains(&idx) {
            return None;
        }
        Some(Self::rotate(name, idx, 16))
    }

    /// Deterministic rotation over the suite: mix `i` of width `w` takes
    /// benchmarks starting at `(i-1)*3`, stepping by 1 for odd mixes
    /// (clustered: neighbours in the suite share behaviour, like the
    /// paper's homogeneous mixes Q2/Q4/Q5) and by a prime 7 for even
    /// mixes (diverse blends), so the suite spans both extremes of
    /// Figure 2's utilization spectrum.
    fn rotate(name: &str, idx: usize, width: usize) -> Self {
        let names = spec_names();
        let step = if idx % 2 == 1 { 1 } else { 7 };
        let programs = (0..width)
            .map(|k| {
                let j = ((idx - 1) * 3 + k * step) % names.len();
                spec_profile(names[j]).expect("suite names all resolve")
            })
            .collect();
        WorkloadMix {
            name: name.to_owned(),
            programs,
        }
    }

    /// The mix's name (Q3, E12, ...).
    #[must_use]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The per-core programs.
    #[must_use]
    pub fn programs(&self) -> &[WorkloadSpec] {
        &self.programs
    }

    /// Number of cores.
    #[must_use]
    pub fn cores(&self) -> usize {
        self.programs.len()
    }

    /// Is this a high-memory-intensity mix (>= half the programs
    /// intensive — Table V's `*`)?
    #[must_use]
    pub fn is_memory_intensive(&self) -> bool {
        let intense = self
            .programs
            .iter()
            .filter(|p| p.is_memory_intensive())
            .count();
        intense * 2 >= self.programs.len()
    }

    /// Scales every program's footprint (for scaled-down cache studies).
    #[must_use]
    pub fn with_footprint_scale(mut self, scale: f64) -> Self {
        self.programs = self
            .programs
            .into_iter()
            .map(|p| p.with_footprint_scale(scale))
            .collect();
        self
    }
}

/// All 24 quad-core mixes.
#[must_use]
pub fn all_quad() -> Vec<WorkloadMix> {
    (1..=24)
        .map(|i| WorkloadMix::quad(&format!("Q{i}")).expect("in range"))
        .collect()
}

/// All 16 eight-core mixes.
#[must_use]
pub fn all_eight_core() -> Vec<WorkloadMix> {
    (1..=16)
        .map(|i| WorkloadMix::eight(&format!("E{i}")).expect("in range"))
        .collect()
}

/// All 8 sixteen-core mixes.
#[must_use]
pub fn all_sixteen_core() -> Vec<WorkloadMix> {
    (1..=8)
        .map(|i| WorkloadMix::sixteen(&format!("S{i}")).expect("in range"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mix_widths() {
        assert_eq!(WorkloadMix::quad("Q1").unwrap().cores(), 4);
        assert_eq!(WorkloadMix::eight("E16").unwrap().cores(), 8);
        assert_eq!(WorkloadMix::sixteen("S8").unwrap().cores(), 16);
    }

    #[test]
    fn out_of_range_names_are_none() {
        assert!(WorkloadMix::quad("Q0").is_none());
        assert!(WorkloadMix::quad("Q25").is_none());
        assert!(WorkloadMix::eight("E17").is_none());
        assert!(WorkloadMix::sixteen("S9").is_none());
        assert!(WorkloadMix::quad("E1").is_none());
    }

    #[test]
    fn mixes_are_deterministic() {
        assert_eq!(WorkloadMix::quad("Q5"), WorkloadMix::quad("Q5"));
    }

    #[test]
    fn adjacent_mixes_differ() {
        let a = WorkloadMix::quad("Q1").unwrap();
        let b = WorkloadMix::quad("Q2").unwrap();
        assert_ne!(a.programs(), b.programs());
    }

    #[test]
    fn suite_has_intensity_diversity() {
        let mixes = all_quad();
        let intense = mixes.iter().filter(|m| m.is_memory_intensive()).count();
        assert!(
            intense >= 4,
            "some mixes must be memory intensive, got {intense}"
        );
        assert!(intense <= 20, "some mixes must be light");
    }

    #[test]
    fn all_collections_have_expected_sizes() {
        assert_eq!(all_quad().len(), 24);
        assert_eq!(all_eight_core().len(), 16);
        assert_eq!(all_sixteen_core().len(), 8);
    }

    #[test]
    fn footprint_scaling_applies_to_all_programs() {
        let m = WorkloadMix::quad("Q1").unwrap().with_footprint_scale(0.1);
        for p in m.programs() {
            assert!(p.footprint_bytes <= 256 << 20);
        }
    }
}
