//! Off-chip main memory: a DRAM module addressed by physical address.

use crate::address::AddressMapping;
use crate::config::DramConfig;
use crate::controller::DramModule;
use crate::request::{Completion, Op, Request};
use crate::stats::DramStats;
use crate::timing::Cycle;

/// Off-chip DRAM main memory.
///
/// Wraps a [`DramModule`] with the paper's `row-rank-bank-mc-column`
/// address interleaving so callers issue transfers by physical address.
/// A transfer that spans multiple rows is split into per-row transactions
/// and the completion of the last one is returned.
/// # Example
///
/// ```
/// use bimodal_dram::{DramConfig, MainMemory};
///
/// let mut mem = MainMemory::new(DramConfig::ddr3(1, 2));
/// let first = mem.read(0x4000, 64, 0);
/// let second = mem.read(0x4040, 64, first.done); // same row: faster
/// assert!(second.latency() < first.latency());
/// ```
#[derive(Debug)]
pub struct MainMemory {
    module: DramModule,
    mapping: AddressMapping,
}

impl MainMemory {
    /// Creates main memory from a DRAM configuration.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is invalid (see [`DramModule::new`]).
    #[must_use]
    pub fn new(config: DramConfig) -> Self {
        let mapping = AddressMapping::new(&config);
        MainMemory {
            module: DramModule::new(config),
            mapping,
        }
    }

    /// Transfers `bytes` starting at physical address `addr`.
    ///
    /// Returns the completion of the final split transaction (row-crossing
    /// transfers pay for every row touched, which is how large-block
    /// fetches consume extra off-chip bandwidth).
    pub fn transfer(&mut self, addr: u64, bytes: u32, op: Op, at: Cycle) -> Completion {
        assert!(bytes > 0, "zero-byte main-memory transfer");
        let row_bytes = self.module.config().row_bytes;
        let mut remaining = bytes;
        let mut cursor = addr;
        let mut when = at;
        let mut first: Option<Completion> = None;
        let mut last: Completion;
        loop {
            let d = self.mapping.decode(cursor);
            let in_row = row_bytes - (d.column % row_bytes);
            let chunk = remaining.min(in_row);
            last = self.module.access(Request {
                loc: d.loc,
                bytes: chunk,
                op,
                arrival: when,
            });
            first.get_or_insert(last);
            remaining -= chunk;
            if remaining == 0 {
                break;
            }
            cursor += u64::from(chunk);
            when = last.done;
        }
        Completion {
            arrival: at,
            start: first.map_or(last.start, |f| f.start),
            done: last.done,
            row_event: first.map_or(last.row_event, |f| f.row_event),
        }
    }

    /// Reads `bytes` at `addr`.
    pub fn read(&mut self, addr: u64, bytes: u32, at: Cycle) -> Completion {
        self.transfer(addr, bytes, Op::Read, at)
    }

    /// Writes `bytes` at `addr` (e.g. a dirty writeback).
    pub fn write(&mut self, addr: u64, bytes: u32, at: Cycle) -> Completion {
        self.transfer(addr, bytes, Op::Write, at)
    }

    /// Sets the traffic class attributed to subsequent transfers (see
    /// [`DramModule::set_class`]).
    #[inline]
    pub fn set_class(&mut self, class: bimodal_obs::TrafficClass) {
        self.module.set_class(class);
    }

    /// Marks subsequent transfers as drained background work (see
    /// [`DramModule::set_deferred_mode`]).
    #[inline]
    pub fn set_deferred_mode(&mut self, on: bool) {
        self.module.set_deferred_mode(on);
    }

    /// Per-class bandwidth and occupancy counters.
    #[must_use]
    pub fn bandwidth(&self) -> &bimodal_obs::BandwidthTracker {
        self.module.bandwidth()
    }

    /// Aggregate DRAM statistics.
    #[must_use]
    pub fn stats(&self) -> DramStats {
        self.module.stats()
    }

    /// Clears statistics, keeping timing state.
    pub fn reset_stats(&mut self) {
        self.module.reset_stats();
    }

    /// The underlying module (for tests and detailed inspection).
    #[must_use]
    pub fn module(&self) -> &DramModule {
        &self.module
    }

    /// The address mapping in use.
    #[must_use]
    pub fn mapping(&self) -> &AddressMapping {
        &self.mapping
    }

    /// Serializes the underlying module's mutable state. The address
    /// mapping is config-derived and not written.
    pub fn save_state(&self, w: &mut bimodal_ckpt::SnapshotWriter) {
        self.module.save_state(w);
    }

    /// Restores state written by [`MainMemory::save_state`].
    pub fn load_state(
        &mut self,
        r: &mut bimodal_ckpt::SnapshotReader<'_>,
    ) -> Result<(), bimodal_ckpt::CkptError> {
        self.module.load_state(r)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::timing::TimingParams;

    fn memory() -> MainMemory {
        let mut c = DramConfig::ddr3(2, 2);
        c.timing = TimingParams::ddr3_1600h(2).without_refresh();
        MainMemory::new(c)
    }

    #[test]
    fn read_accounts_bytes() {
        let mut m = memory();
        m.read(0x1000, 64, 0);
        assert_eq!(m.stats().totals.bytes_read, 64);
    }

    #[test]
    fn sequential_64b_reads_in_one_row_hit_row_buffer() {
        let mut m = memory();
        let a = m.read(0x10000, 64, 0);
        let b = m.read(0x10040, 64, a.done);
        assert!(b.latency() < a.latency());
        assert_eq!(m.stats().totals.row_hits, 1);
    }

    #[test]
    fn row_crossing_transfer_splits() {
        let mut m = memory();
        // Start 64 bytes before the end of a row; 128-byte read spans two.
        let row_end = 2048 - 64;
        let c = m.read(row_end as u64, 128, 0);
        assert_eq!(m.stats().totals.accesses(), 2);
        assert_eq!(m.stats().totals.bytes_read, 128);
        assert!(c.done > 0);
    }

    #[test]
    fn write_counts_bytes_written() {
        let mut m = memory();
        m.write(0x2000, 64, 10);
        assert_eq!(m.stats().totals.bytes_written, 64);
        assert_eq!(m.stats().totals.writes, 1);
    }

    #[test]
    #[should_panic(expected = "zero-byte")]
    fn zero_byte_transfer_panics() {
        let mut m = memory();
        m.read(0, 0, 0);
    }

    #[test]
    fn big_block_fetch_costs_more_than_small() {
        let mut m = memory();
        let small = m.read(0x100_0000, 64, 0);
        let mut m2 = memory();
        let big = m2.read(0x100_0000, 512, 0);
        assert!(big.latency() > small.latency());
    }
}
