//! Per-bank row-buffer state machine.

use crate::timing::{Cycle, TimingParams};

/// Row-buffer outcome of an access.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum RowEvent {
    /// The target row was already open: column access only.
    Hit,
    /// Another row was open: precharge + activate + column access.
    Miss,
    /// The bank was idle/closed: activate + column access.
    Empty,
}

/// State of one DRAM bank under an open-page policy.
///
/// The bank tracks which row (if any) its row buffer holds, when it will
/// next be able to accept a command, and when the current row was
/// activated (to honour `tRAS` before a precharge).
#[derive(Debug, Clone, Default)]
pub struct Bank {
    open_row: Option<u64>,
    ready_at: Cycle,
    last_activate: Cycle,
    /// Latest cycle up to which the bank was occupied by drained
    /// background (deferred-queue) work; lets the latency anatomy split
    /// a later access's queue wait into demand-induced and
    /// deferred-induced portions.
    deferred_until: Cycle,
}

/// Outcome of preparing a row for access in a bank.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RowPrep {
    /// Cycle at which the bank actually started (>= requested time).
    pub start: Cycle,
    /// Cycle at which the target row is open and a column command may issue.
    pub row_open: Cycle,
    /// What the row buffer did.
    pub event: RowEvent,
}

impl Bank {
    /// Creates a closed, idle bank.
    #[must_use]
    pub fn new() -> Self {
        Bank::default()
    }

    /// The row currently held in the row buffer, if any.
    #[must_use]
    pub fn open_row(&self) -> Option<u64> {
        self.open_row
    }

    /// Earliest cycle the bank can accept a new command.
    #[must_use]
    pub fn ready_at(&self) -> Cycle {
        self.ready_at
    }

    /// Would an access to `row` at this moment hit the open row buffer?
    #[must_use]
    pub fn would_hit(&self, row: u64) -> bool {
        self.open_row == Some(row)
    }

    /// Opens `row` for access, precharging/activating as needed.
    ///
    /// Returns when the row is open and what the row buffer did. Leaves the
    /// bank ready (for a column command) at `row_open`.
    pub fn prepare_row(&mut self, row: u64, at: Cycle, t: &TimingParams) -> RowPrep {
        let start = at.max(self.ready_at);
        let (row_open, event) = match self.open_row {
            Some(open) if open == row => (start, RowEvent::Hit),
            Some(_) => {
                // Precharge may not begin before tRAS from the activate.
                let pre_start = start.max(self.last_activate + t.ras);
                let act_at = pre_start + t.rp;
                self.last_activate = act_at;
                (act_at + t.rcd, RowEvent::Miss)
            }
            None => {
                self.last_activate = start;
                (start + t.rcd, RowEvent::Empty)
            }
        };
        self.open_row = Some(row);
        self.ready_at = row_open;
        RowPrep {
            start,
            row_open,
            event,
        }
    }

    /// Occupies the bank until `until` (e.g. for the column/burst phase).
    pub fn occupy_until(&mut self, until: Cycle) {
        self.ready_at = self.ready_at.max(until);
    }

    /// Marks the occupancy ending at `until` as background (deferred)
    /// work.
    pub fn note_deferred(&mut self, until: Cycle) {
        self.deferred_until = self.deferred_until.max(until);
    }

    /// Latest cycle up to which the bank was held by background work.
    #[must_use]
    pub fn deferred_until(&self) -> Cycle {
        self.deferred_until
    }

    /// Drops the row buffer contents without timing cost (used when a
    /// refresh has already performed the precharge-all).
    pub fn discard_row(&mut self) {
        self.open_row = None;
    }

    /// Closes the row buffer with an explicit precharge.
    pub fn close(&mut self, at: Cycle, t: &TimingParams) {
        if self.open_row.is_some() {
            let pre_start = at.max(self.ready_at).max(self.last_activate + t.ras);
            self.ready_at = pre_start + t.rp;
            self.open_row = None;
        }
    }
}

impl bimodal_ckpt::Snapshot for RowEvent {
    fn save(&self, w: &mut bimodal_ckpt::SnapshotWriter) {
        w.u8(match self {
            RowEvent::Hit => 0,
            RowEvent::Miss => 1,
            RowEvent::Empty => 2,
        });
    }

    fn load(r: &mut bimodal_ckpt::SnapshotReader<'_>) -> Result<Self, bimodal_ckpt::CkptError> {
        match r.u8()? {
            0 => Ok(RowEvent::Hit),
            1 => Ok(RowEvent::Miss),
            2 => Ok(RowEvent::Empty),
            b => Err(r.corrupt(format!("invalid row event tag {b}"))),
        }
    }
}

impl bimodal_ckpt::Snapshot for Bank {
    fn save(&self, w: &mut bimodal_ckpt::SnapshotWriter) {
        self.open_row.save(w);
        w.u64(self.ready_at);
        w.u64(self.last_activate);
        w.u64(self.deferred_until);
    }

    fn load(r: &mut bimodal_ckpt::SnapshotReader<'_>) -> Result<Self, bimodal_ckpt::CkptError> {
        Ok(Bank {
            open_row: bimodal_ckpt::Snapshot::load(r)?,
            ready_at: r.u64()?,
            last_activate: r.u64()?,
            deferred_until: r.u64()?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn timing() -> TimingParams {
        TimingParams::ddr3_1600h(2).without_refresh()
    }

    #[test]
    fn first_access_is_row_empty() {
        let t = timing();
        let mut b = Bank::new();
        let prep = b.prepare_row(7, 100, &t);
        assert_eq!(prep.event, RowEvent::Empty);
        assert_eq!(prep.row_open, 100 + t.rcd);
        assert_eq!(b.open_row(), Some(7));
    }

    #[test]
    fn same_row_is_a_hit_with_no_delay() {
        let t = timing();
        let mut b = Bank::new();
        b.prepare_row(7, 0, &t);
        let at = b.ready_at() + 10;
        let prep = b.prepare_row(7, at, &t);
        assert_eq!(prep.event, RowEvent::Hit);
        assert_eq!(prep.row_open, at);
    }

    #[test]
    fn different_row_is_a_miss_paying_rp_and_rcd() {
        let t = timing();
        let mut b = Bank::new();
        b.prepare_row(7, 0, &t);
        // Far enough in the future that tRAS is already satisfied.
        let at = 10_000;
        let prep = b.prepare_row(8, at, &t);
        assert_eq!(prep.event, RowEvent::Miss);
        assert_eq!(prep.row_open, at + t.rp + t.rcd);
    }

    #[test]
    fn precharge_waits_for_tras() {
        let t = timing();
        let mut b = Bank::new();
        b.prepare_row(7, 0, &t); // activate at cycle 0
                                 // Immediately conflicting access: precharge cannot start before tRAS.
        let prep = b.prepare_row(9, b.ready_at(), &t);
        assert!(prep.row_open >= t.ras + t.rp + t.rcd);
    }

    #[test]
    fn busy_bank_delays_start() {
        let t = timing();
        let mut b = Bank::new();
        b.prepare_row(7, 0, &t);
        b.occupy_until(500);
        let prep = b.prepare_row(7, 100, &t);
        assert_eq!(prep.start, 500);
    }

    #[test]
    fn close_empties_row_buffer() {
        let t = timing();
        let mut b = Bank::new();
        b.prepare_row(7, 0, &t);
        b.close(10_000, &t);
        assert_eq!(b.open_row(), None);
        let prep = b.prepare_row(7, 20_000, &t);
        assert_eq!(prep.event, RowEvent::Empty);
    }

    #[test]
    fn close_on_closed_bank_is_noop() {
        let t = timing();
        let mut b = Bank::new();
        b.close(100, &t);
        assert_eq!(b.ready_at(), 0);
    }
}
