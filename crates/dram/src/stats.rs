//! Event counters collected by a DRAM module.

use crate::bank::RowEvent;
use crate::request::Op;

/// Counters for one bank (used e.g. to compare the metadata bank's
/// row-buffer hit rate against data banks, Fig. 9b).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct BankStats {
    /// Accesses that hit the open row.
    pub row_hits: u64,
    /// Accesses that conflicted with a different open row.
    pub row_misses: u64,
    /// Accesses to a closed bank.
    pub row_empty: u64,
    /// Activate commands issued.
    pub activates: u64,
    /// Precharge commands issued.
    pub precharges: u64,
    /// Read transactions.
    pub reads: u64,
    /// Write transactions.
    pub writes: u64,
    /// Bytes read out of the bank.
    pub bytes_read: u64,
    /// Bytes written into the bank.
    pub bytes_written: u64,
}

impl BankStats {
    /// Total accesses observed.
    #[must_use]
    pub fn accesses(&self) -> u64 {
        self.row_hits + self.row_misses + self.row_empty
    }

    /// Row-buffer hit rate in `[0, 1]`; zero when no accesses were seen.
    #[must_use]
    pub fn row_buffer_hit_rate(&self) -> f64 {
        let total = self.accesses();
        if total == 0 {
            0.0
        } else {
            self.row_hits as f64 / total as f64
        }
    }

    /// Total bytes moved in either direction.
    #[must_use]
    pub fn bytes_total(&self) -> u64 {
        self.bytes_read + self.bytes_written
    }

    /// Records a row-buffer event (hit/miss/empty) and the activate and
    /// precharge commands it implies.
    pub(crate) fn record_row_event(&mut self, event: RowEvent) {
        match event {
            RowEvent::Hit => self.row_hits += 1,
            RowEvent::Miss => {
                self.row_misses += 1;
                self.precharges += 1;
                self.activates += 1;
            }
            RowEvent::Empty => {
                self.row_empty += 1;
                self.activates += 1;
            }
        }
    }

    /// Records a column access (read or write) of `bytes`.
    pub(crate) fn record_op(&mut self, op: Op, bytes: u32) {
        match op {
            Op::Read => {
                self.reads += 1;
                self.bytes_read += u64::from(bytes);
            }
            Op::Write => {
                self.writes += 1;
                self.bytes_written += u64::from(bytes);
            }
        }
    }
}

/// Module-wide statistics: the sum over all banks plus refresh events.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DramStats {
    /// Aggregate of all per-bank counters.
    pub totals: BankStats,
    /// Refresh windows that delayed at least one request.
    pub refresh_stalls: u64,
}

impl DramStats {
    /// Row-buffer hit rate over the whole module.
    #[must_use]
    pub fn row_buffer_hit_rate(&self) -> f64 {
        self.totals.row_buffer_hit_rate()
    }
}

impl bimodal_ckpt::Snapshot for BankStats {
    fn save(&self, w: &mut bimodal_ckpt::SnapshotWriter) {
        for v in [
            self.row_hits,
            self.row_misses,
            self.row_empty,
            self.activates,
            self.precharges,
            self.reads,
            self.writes,
            self.bytes_read,
            self.bytes_written,
        ] {
            w.u64(v);
        }
    }

    fn load(r: &mut bimodal_ckpt::SnapshotReader<'_>) -> Result<Self, bimodal_ckpt::CkptError> {
        Ok(BankStats {
            row_hits: r.u64()?,
            row_misses: r.u64()?,
            row_empty: r.u64()?,
            activates: r.u64()?,
            precharges: r.u64()?,
            reads: r.u64()?,
            writes: r.u64()?,
            bytes_read: r.u64()?,
            bytes_written: r.u64()?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rbh_is_zero_without_accesses() {
        assert_eq!(BankStats::default().row_buffer_hit_rate(), 0.0);
    }

    #[test]
    fn record_counts_events_and_bytes() {
        let mut s = BankStats::default();
        s.record_row_event(RowEvent::Empty);
        s.record_op(Op::Read, 64);
        s.record_row_event(RowEvent::Hit);
        s.record_op(Op::Read, 64);
        s.record_row_event(RowEvent::Miss);
        s.record_op(Op::Write, 128);
        assert_eq!(s.accesses(), 3);
        assert_eq!(s.activates, 2);
        assert_eq!(s.precharges, 1);
        assert_eq!(s.bytes_read, 128);
        assert_eq!(s.bytes_written, 128);
        assert!((s.row_buffer_hit_rate() - 1.0 / 3.0).abs() < 1e-12);
    }
}
