//! DRAM module configuration.

use crate::timing::{Cycle, TimingParams};

/// Row-buffer management policy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum PagePolicy {
    /// Leave rows open after an access (the paper's policy, Table IV):
    /// later same-row accesses hit the row buffer.
    #[default]
    Open,
    /// Precharge immediately after each access: every access pays the
    /// activate, none pay a conflict precharge.
    Closed,
}

/// Static description of a DRAM module: geometry, bus, and timing.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct DramConfig {
    /// Number of independent channels (each with its own data bus).
    pub channels: u32,
    /// Ranks per channel.
    pub ranks_per_channel: u32,
    /// Banks per rank.
    pub banks_per_rank: u32,
    /// Row (DRAM page) size in bytes. The paper uses 2 KB pages.
    pub row_bytes: u32,
    /// Data bus width in bits, per channel.
    pub bus_bits: u32,
    /// CPU cycles per DRAM clock (2 for a 3.2 GHz CPU over 1.6 GHz DRAM).
    pub cpu_per_dram_clk: Cycle,
    /// Core timing parameters (in CPU cycles).
    pub timing: TimingParams,
    /// Row-buffer management policy.
    pub page_policy: PagePolicy,
    /// Extra media latency added to every read's column access, in CPU
    /// cycles. Zero for DRAM; non-zero models slow storage-class media
    /// (3DXPoint-like) behind the same protocol.
    pub extra_read_lat: Cycle,
    /// Extra media latency a write holds its bank for after the burst, in
    /// CPU cycles. Zero for DRAM; storage-class media writes are far
    /// slower than reads, and the occupancy surfaces as queue pressure.
    pub extra_write_lat: Cycle,
}

impl DramConfig {
    /// Stacked-DRAM cache configuration matching Table IV: 2 KB pages,
    /// 128-bit bus at 1.6 GHz, CL-nRCD-nRP = 9-9-9, one rank per channel.
    ///
    /// The paper's 4/8/16-core systems use 2/4/8 channels with 8 banks per
    /// channel (16/32/64 banks total).
    #[must_use]
    pub fn stacked(channels: u32, banks_per_channel: u32) -> Self {
        DramConfig {
            channels,
            ranks_per_channel: 1,
            banks_per_rank: banks_per_channel,
            row_bytes: 2048,
            bus_bits: 128,
            cpu_per_dram_clk: 2,
            timing: TimingParams::stacked(2),
            page_policy: PagePolicy::Open,
            extra_read_lat: 0,
            extra_write_lat: 0,
        }
    }

    /// Off-chip DDR3-1600H configuration matching Table IV: 64-bit channel
    /// interface, 2 KB pages, 9-9-9, with refresh enabled.
    ///
    /// The paper's 4/8/16-core systems use 1/2/4 off-chip channels in 2/4/8
    /// ranks (16/32/64 banks total); pass the per-channel rank count.
    #[must_use]
    pub fn ddr3(channels: u32, ranks_per_channel: u32) -> Self {
        DramConfig {
            channels,
            ranks_per_channel,
            banks_per_rank: 8,
            row_bytes: 2048,
            bus_bits: 64,
            cpu_per_dram_clk: 2,
            timing: TimingParams::ddr3_1600h(2),
            page_policy: PagePolicy::Open,
            extra_read_lat: 0,
            extra_write_lat: 0,
        }
    }

    /// HBM2-class stacked configuration: same 128-bit channel and 2 KB
    /// rows as the paper's stack, but twice the banks per channel and the
    /// tighter [`TimingParams::hbm2`] core timings.
    #[must_use]
    pub fn hbm2_stacked(channels: u32, banks_per_channel: u32) -> Self {
        DramConfig {
            banks_per_rank: banks_per_channel * 2,
            timing: TimingParams::hbm2(2),
            ..DramConfig::stacked(channels, banks_per_channel)
        }
    }

    /// DDR5-4800-class off-chip configuration: same 64-bit channel and
    /// geometry as [`DramConfig::ddr3`], but a 1:1 CPU:DRAM clock ratio
    /// (double the bus bandwidth) and [`TimingParams::ddr5_4800`] core
    /// timings (higher first-word latency in cycles).
    #[must_use]
    pub fn ddr5(channels: u32, ranks_per_channel: u32) -> Self {
        DramConfig {
            cpu_per_dram_clk: 1,
            timing: TimingParams::ddr5_4800(1),
            ..DramConfig::ddr3(channels, ranks_per_channel)
        }
    }

    /// A slow 3DXPoint-like far tier behind the DRAM cache: DDR3 protocol
    /// and geometry, but asymmetric media latencies — every read pays
    /// ~110 ns extra before data, and every write holds its bank ~500 ns
    /// after the burst, so write bursts back up the deferred queues.
    #[must_use]
    pub fn pcm_far(channels: u32, ranks_per_channel: u32) -> Self {
        DramConfig {
            // ~110 ns extra read and ~500 ns write occupancy at 3.2 GHz.
            extra_read_lat: 352,
            extra_write_lat: 1600,
            ..DramConfig::ddr3(channels, ranks_per_channel)
        }
    }

    /// Total number of banks across the module.
    #[must_use]
    pub fn total_banks(&self) -> u32 {
        self.channels * self.ranks_per_channel * self.banks_per_rank
    }

    /// Bytes transferred per CPU cycle on one channel's data bus
    /// (double data rate: two beats per DRAM clock).
    #[must_use]
    pub fn bus_bytes_per_cpu_cycle(&self) -> u32 {
        // bits/8 bytes per beat, 2 beats per DRAM clock, cpu_per_dram_clk
        // CPU cycles per DRAM clock.
        (self.bus_bits / 8) * 2 / u32::try_from(self.cpu_per_dram_clk).unwrap_or(1)
    }

    /// CPU cycles needed to move `bytes` over one channel's data bus.
    ///
    /// Always at least one cycle for a non-empty transfer.
    #[must_use]
    pub fn burst_cycles(&self, bytes: u32) -> Cycle {
        if bytes == 0 {
            return 0;
        }
        let per_cycle = self.bus_bytes_per_cpu_cycle().max(1);
        Cycle::from(bytes.div_ceil(per_cycle)).max(1)
    }

    /// Validates internal consistency.
    ///
    /// # Errors
    ///
    /// Returns a description of the first violated constraint (zero-sized
    /// geometry, non-power-of-two row size, or zero bus width).
    pub fn validate(&self) -> Result<(), String> {
        if self.channels == 0 || self.ranks_per_channel == 0 || self.banks_per_rank == 0 {
            return Err("geometry dimensions must be non-zero".into());
        }
        if !self.row_bytes.is_power_of_two() {
            return Err(format!("row size {} is not a power of two", self.row_bytes));
        }
        if self.bus_bits == 0 || !self.bus_bits.is_multiple_of(8) {
            return Err(format!(
                "bus width {} must be a non-zero multiple of 8",
                self.bus_bits
            ));
        }
        if self.cpu_per_dram_clk == 0 {
            return Err("cpu_per_dram_clk must be non-zero".into());
        }
        Ok(())
    }
}

impl Default for DramConfig {
    fn default() -> Self {
        DramConfig::stacked(2, 8)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stacked_bus_moves_64_bytes_in_4_cpu_cycles() {
        // 128-bit bus: 16 B/beat, 2 beats/DRAM clock = 32 B/DRAM clock
        // = 16 B per CPU cycle at ratio 2.
        let c = DramConfig::stacked(2, 8);
        assert_eq!(c.bus_bytes_per_cpu_cycle(), 16);
        assert_eq!(c.burst_cycles(64), 4);
    }

    #[test]
    fn ddr3_bus_moves_64_bytes_in_8_cpu_cycles() {
        // 64-bit bus: BL=4 DRAM clocks for 64 B (paper Table IV), which is
        // 8 CPU cycles at the 2:1 ratio.
        let c = DramConfig::ddr3(1, 2);
        assert_eq!(c.burst_cycles(64), 8);
    }

    #[test]
    fn burst_cycles_zero_bytes_is_zero() {
        let c = DramConfig::default();
        assert_eq!(c.burst_cycles(0), 0);
    }

    #[test]
    fn burst_cycles_rounds_up() {
        let c = DramConfig::stacked(1, 8);
        assert_eq!(c.burst_cycles(1), 1);
        assert_eq!(c.burst_cycles(17), 2);
    }

    #[test]
    fn total_banks_counts_all_dimensions() {
        let c = DramConfig::ddr3(2, 4);
        assert_eq!(c.total_banks(), 2 * 4 * 8);
    }

    #[test]
    fn default_config_validates() {
        assert!(DramConfig::default().validate().is_ok());
        assert!(DramConfig::ddr3(4, 8).validate().is_ok());
    }

    #[test]
    fn validation_rejects_bad_geometry() {
        let c = DramConfig {
            channels: 0,
            ..DramConfig::default()
        };
        assert!(c.validate().is_err());

        let c = DramConfig {
            row_bytes: 1000,
            ..DramConfig::default()
        };
        assert!(c.validate().is_err());

        let c = DramConfig {
            bus_bits: 12,
            ..DramConfig::default()
        };
        assert!(c.validate().is_err());
    }
}
