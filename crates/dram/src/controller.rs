//! The DRAM module: banks, buses, refresh, and FR-FCFS scheduling.

use std::collections::VecDeque;

use bimodal_obs::{anatomy, BandwidthTracker, TrafficClass};

use crate::bank::{Bank, RowEvent};
use crate::config::{DramConfig, PagePolicy};
use crate::request::{Completion, Location, Op, Request};
use crate::stats::{BankStats, DramStats};
use crate::timing::Cycle;

/// Result of opening a row ahead of time (the parallel tag+data
/// optimization of the Bi-Modal cache opens the data row while tags are
/// being read from the metadata bank).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OpenRowOutcome {
    /// Cycle at which the row is open in the row buffer.
    pub row_open: Cycle,
    /// What the row buffer did to get there.
    pub row_event: RowEvent,
}

/// Identifier for a request submitted to the FR-FCFS queue.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ReqId(u64);

#[derive(Debug)]
struct Pending {
    id: u64,
    req: Request,
}

/// A DRAM module: a set of channels/ranks/banks behind per-channel data
/// buses, scheduled with FR-FCFS (row hits first, then oldest first) under
/// an open-page policy.
///
/// Two usage styles are supported:
///
/// * [`DramModule::access`] — resolve a single request immediately
///   (first-come-first-served with respect to earlier calls).
/// * [`DramModule::submit`] + [`DramModule::resolve`] — queue several
///   outstanding requests and let the FR-FCFS scheduler pick the service
///   order, as a real memory controller command queue would.
#[derive(Debug)]
pub struct DramModule {
    config: DramConfig,
    banks: Vec<Bank>,
    bank_stats: Vec<BankStats>,
    /// Running sum over all banks, so [`DramModule::stats`] is O(1) —
    /// the observability layer reads it on every sampled access.
    totals: BankStats,
    /// Refresh epoch (`time / tREFI`) last observed per bank; a new epoch
    /// closes the row buffer (refresh precharges all banks).
    bank_epoch: Vec<u64>,
    /// Last four activate times per rank (and how many are valid), for
    /// the tFAW constraint.
    rank_activates: Vec<([Cycle; 4], u8)>,
    bus_free_at: Vec<Cycle>,
    refresh_stalls: u64,
    queue: VecDeque<Pending>,
    done: Vec<(u64, Completion)>,
    next_id: u64,
    /// Traffic class the next command is attributed to; set by the
    /// issuing scheme via [`DramModule::set_class`] before each access.
    class: TrafficClass,
    /// Whether the commands being issued are drained background
    /// (deferred-queue) work; their bank occupancy is marked so the
    /// latency anatomy can attribute later accesses' waits to it.
    /// Transient — toggled around each drain, never true at checkpoint
    /// boundaries.
    deferred_mode: bool,
    bandwidth: BandwidthTracker,
}

impl DramModule {
    /// Creates a module from a validated configuration.
    ///
    /// # Panics
    ///
    /// Panics if `config.validate()` fails; configurations are static
    /// experiment inputs, so a bad one is a programming error.
    #[must_use]
    pub fn new(config: DramConfig) -> Self {
        if let Err(e) = config.validate() {
            panic!("invalid DRAM configuration: {e}");
        }
        let n_banks = config.total_banks() as usize;
        DramModule {
            banks: (0..n_banks).map(|_| Bank::new()).collect(),
            bank_stats: vec![BankStats::default(); n_banks],
            totals: BankStats::default(),
            bank_epoch: vec![0; n_banks],
            rank_activates: vec![
                ([0; 4], 0);
                (config.channels * config.ranks_per_channel) as usize
            ],
            bus_free_at: vec![0; config.channels as usize],
            refresh_stalls: 0,
            queue: VecDeque::new(),
            done: Vec::new(),
            next_id: 0,
            class: TrafficClass::Other,
            deferred_mode: false,
            bandwidth: BandwidthTracker::new(config.channels as usize, n_banks),
            config,
        }
    }

    /// Sets the traffic class attributed to subsequent commands. A plain
    /// register store: schemes set it immediately before each DRAM
    /// operation they issue.
    #[inline]
    pub fn set_class(&mut self, class: TrafficClass) {
        self.class = class;
    }

    /// Marks subsequent commands as drained background (deferred-queue)
    /// work. The drain loop brackets itself with `true`/`false`.
    #[inline]
    pub fn set_deferred_mode(&mut self, on: bool) {
        self.deferred_mode = on;
    }

    /// Cycles a column access's CAS + data burst of `bytes` takes,
    /// ignoring queueing and row state. Used to estimate the latency a
    /// fused tag+data burst avoided.
    #[must_use]
    pub fn column_cost(&self, bytes: u32) -> Cycle {
        self.config.timing.cl + self.config.burst_cycles(bytes)
    }

    /// Per-class bandwidth and occupancy counters.
    #[must_use]
    pub fn bandwidth(&self) -> &BandwidthTracker {
        &self.bandwidth
    }

    /// Turns on the per-set access heatmap (a hash insert per access, so
    /// off unless an observer wants it).
    pub fn enable_heatmap(&mut self) {
        self.bandwidth.enable_heatmap();
    }

    /// The configuration this module was built with.
    #[must_use]
    pub fn config(&self) -> &DramConfig {
        &self.config
    }

    fn bank_index(&self, loc: Location) -> usize {
        let c = &self.config;
        assert!(
            loc.channel < c.channels
                && loc.rank < c.ranks_per_channel
                && loc.bank < c.banks_per_rank,
            "location {loc:?} out of range for geometry {}x{}x{}",
            c.channels,
            c.ranks_per_channel,
            c.banks_per_rank
        );
        ((loc.channel * c.ranks_per_channel + loc.rank) * c.banks_per_rank + loc.bank) as usize
    }

    fn rank_index(&self, loc: Location) -> usize {
        (loc.channel * self.config.ranks_per_channel + loc.rank) as usize
    }

    /// Enforces the four-activate window: if `at` would be the fifth
    /// activate within `tFAW` of this rank, push it out, then record it.
    ///
    /// Transaction-level approximation: the recorded time is the
    /// (constrained) service start rather than the precise ACT command
    /// cycle, slightly under-enforcing the window when a precharge
    /// precedes the activate.
    fn faw_adjust(&mut self, loc: Location, at: Cycle, will_activate: bool) -> Cycle {
        let faw = self.config.timing.faw;
        if faw == 0 || !will_activate {
            return at;
        }
        let rank = self.rank_index(loc);
        let (window, count) = &mut self.rank_activates[rank];
        // window[0] is the oldest of the last four activates; a fifth
        // activate must wait until tFAW past it.
        let earliest = if *count < 4 {
            at
        } else {
            at.max(window[0] + faw)
        };
        window.rotate_left(1);
        window[3] = earliest;
        *count = (*count + 1).min(4);
        earliest
    }

    /// Pushes `t` past any refresh window it falls into, and closes the row
    /// buffer if a refresh happened since the bank was last touched.
    fn refresh_adjust(&mut self, bank_idx: usize, t: Cycle) -> Cycle {
        let refi = self.config.timing.refi;
        if refi == 0 {
            return t;
        }
        let rfc = self.config.timing.rfc;
        let epoch = t / refi;
        if epoch > self.bank_epoch[bank_idx] {
            // A refresh has occurred since the last access: the row buffer
            // contents were lost to the precharge-all. The precharge was
            // part of the refresh itself, so no tRP is charged here.
            // Each crossed epoch occupied the bank for tRFC; attribute
            // that occupancy (no data-bus time) to the Refresh class.
            let crossed = epoch - self.bank_epoch[bank_idx];
            self.bandwidth
                .record_bank_busy(bank_idx, TrafficClass::Refresh, crossed * rfc);
            self.bank_epoch[bank_idx] = epoch;
            self.banks[bank_idx].discard_row();
        }
        let window_start = epoch * refi;
        if epoch >= 1 && t < window_start + rfc {
            self.refresh_stalls += 1;
            window_start + rfc
        } else {
            t
        }
    }

    /// Opens (activates) `loc.row` without performing a column access.
    ///
    /// Used to overlap the data-row activation with a metadata read on a
    /// different channel. Row-buffer events are recorded against the bank.
    pub fn open_row_hint(&mut self, loc: Location, at: Cycle) -> OpenRowOutcome {
        let idx = self.bank_index(loc);
        let probe = at.max(self.banks[idx].ready_at());
        let at = self.refresh_adjust(idx, probe);
        let at = self.faw_adjust(loc, at, !self.banks[idx].would_hit(loc.row));
        let timing = self.config.timing;
        let prep = self.banks[idx].prepare_row(loc.row, at, &timing);
        self.note_row_event(idx, prep.event);
        OpenRowOutcome {
            row_open: prep.row_open,
            row_event: prep.event,
        }
    }

    /// A column access against a row assumed open (after
    /// [`DramModule::open_row_hint`]). If the row is no longer open (e.g. a
    /// refresh closed it), the row is transparently re-opened and the row
    /// event recorded.
    pub fn column_access(&mut self, loc: Location, bytes: u32, op: Op, at: Cycle) -> Completion {
        let idx = self.bank_index(loc);
        // The unadjusted arrival: refresh/tFAW pushes below shadow `at`,
        // and the pushed value deliberately feeds the queue-wait counter
        // (`record_transfer`), but the anatomy measures from the cycle
        // the issuer asked for.
        let orig_arrival = at;
        let probe = at.max(self.banks[idx].ready_at());
        let at = self.refresh_adjust(idx, probe);
        let at = self.faw_adjust(loc, at, !self.banks[idx].would_hit(loc.row));
        let timing = self.config.timing;
        let (cas_ready, row_event, start) = if self.banks[idx].would_hit(loc.row) {
            let start = at.max(self.banks[idx].ready_at());
            (start, None, start)
        } else {
            let prep = self.banks[idx].prepare_row(loc.row, at, &timing);
            self.note_row_event(idx, prep.event);
            (prep.row_open, Some(prep.event), prep.start)
        };
        let completion =
            self.finish_column(idx, loc, bytes, op, cas_ready, start, at, orig_arrival);
        Completion {
            row_event: row_event.unwrap_or(RowEvent::Hit),
            ..completion
        }
    }

    #[allow(clippy::too_many_arguments)] // internal timing helper: splitting loses clarity
    fn finish_column(
        &mut self,
        idx: usize,
        loc: Location,
        bytes: u32,
        op: Op,
        cas_ready: Cycle,
        start: Cycle,
        arrival: Cycle,
        orig_arrival: Cycle,
    ) -> Completion {
        let t = &self.config.timing;
        // Slow-media extension (zero on DRAM): reads wait on the media
        // before data, writes hold the bank after the burst.
        let media_read = match op {
            Op::Read => self.config.extra_read_lat,
            Op::Write => 0,
        };
        let data_ready = cas_ready + t.cl + media_read;
        let ch = loc.channel as usize;
        let xfer_start = data_ready.max(self.bus_free_at[ch]);
        let burst = self.config.burst_cycles(bytes);
        let done = xfer_start + burst;
        self.bus_free_at[ch] = done;
        // Bank occupancy is decoupled from bus-queue waits: a write holds
        // its bank for the column + burst + recovery window, not for time
        // spent queued behind other channels' transfers.
        let occupy = match op {
            Op::Read => cas_ready + media_read + t.ccd,
            Op::Write => data_ready + burst + t.wr + self.config.extra_write_lat,
        };
        // Anatomy note: the exact timing partition of this column access,
        // telescoping to `done - orig_arrival`. Read the bank's deferred
        // watermark before this op extends it.
        if anatomy::active() {
            let wait = start.saturating_sub(orig_arrival);
            let deferred = self.banks[idx]
                .deferred_until()
                .min(start)
                .saturating_sub(orig_arrival)
                .min(wait);
            anatomy::note_dram(anatomy::DramSegments {
                wait,
                deferred,
                prep: cas_ready.saturating_sub(start),
                cas: data_ready.saturating_sub(cas_ready),
                bus: xfer_start.saturating_sub(data_ready),
                burst,
            });
        }
        self.banks[idx].occupy_until(occupy);
        if self.deferred_mode {
            self.banks[idx].note_deferred(occupy);
        }
        // Attribution: pure counter adds off values the timing model just
        // computed; nothing here feeds back into timing.
        self.bandwidth.record_transfer(
            ch,
            self.class,
            burst,
            u64::from(bytes),
            start.saturating_sub(arrival),
            done,
        );
        self.bandwidth
            .record_bank_busy(idx, self.class, occupy.saturating_sub(start));
        self.bandwidth.record_access(idx as u32, loc.row);
        if self.config.page_policy == PagePolicy::Closed {
            // Auto-precharge after the column access.
            let timing = self.config.timing;
            self.banks[idx].close(occupy, &timing);
        }
        self.note_op(idx, op, bytes);
        Completion {
            arrival,
            start,
            done,
            row_event: RowEvent::Hit,
        }
    }

    /// Services one request immediately (submit + resolve in one step).
    pub fn access(&mut self, req: Request) -> Completion {
        let idx = self.bank_index(req.loc);
        // Probe refresh at the time service could actually begin: a
        // request arriving just before a refresh window but queued behind
        // the bank still collides with the window.
        let probe = req.arrival.max(self.banks[idx].ready_at());
        let at = self.refresh_adjust(idx, probe);
        let at = self.faw_adjust(req.loc, at, !self.banks[idx].would_hit(req.loc.row));
        let timing = self.config.timing;
        let prep = self.banks[idx].prepare_row(req.loc.row, at, &timing);
        self.note_row_event(idx, prep.event);
        let completion = self.finish_column(
            idx,
            req.loc,
            req.bytes,
            req.op,
            prep.row_open,
            prep.start,
            req.arrival,
            req.arrival,
        );
        Completion {
            row_event: prep.event,
            ..completion
        }
    }

    /// Queues a request for FR-FCFS scheduling; resolve it with
    /// [`DramModule::resolve`].
    pub fn submit(&mut self, req: Request) -> ReqId {
        let id = self.next_id;
        self.next_id += 1;
        self.queue.push_back(Pending { id, req });
        ReqId(id)
    }

    /// Number of requests waiting in the scheduling queue.
    #[must_use]
    pub fn queued(&self) -> usize {
        self.queue.len()
    }

    /// Resolves a previously submitted request, servicing queued requests
    /// in FR-FCFS order (row hits first, oldest first) until the target has
    /// been serviced.
    ///
    /// # Panics
    ///
    /// Panics if `id` was never submitted or was already resolved and
    /// retrieved.
    pub fn resolve(&mut self, id: ReqId) -> Completion {
        loop {
            if let Some(pos) = self.done.iter().position(|(d, _)| *d == id.0) {
                return self.done.swap_remove(pos).1;
            }
            let pick = self.pick_fr_fcfs();
            let Some(pos) = pick else {
                panic!("request {id:?} is not pending in the DRAM queue");
            };
            let pending = self.queue.remove(pos).expect("picked index is valid");
            let completion = self.access(pending.req);
            self.done.push((pending.id, completion));
        }
    }

    /// FR-FCFS policy: among queued requests, prefer the oldest one whose
    /// row is currently open in its bank; otherwise take the oldest.
    fn pick_fr_fcfs(&self) -> Option<usize> {
        if self.queue.is_empty() {
            return None;
        }
        let mut best_hit: Option<(usize, Cycle)> = None;
        let mut best_any: Option<(usize, Cycle)> = None;
        for (i, p) in self.queue.iter().enumerate() {
            let idx = self.bank_index(p.req.loc);
            let arrival = p.req.arrival;
            if self.banks[idx].would_hit(p.req.loc.row) && best_hit.is_none_or(|(_, a)| arrival < a)
            {
                best_hit = Some((i, arrival));
            }
            if best_any.is_none_or(|(_, a)| arrival < a) {
                best_any = Some((i, arrival));
            }
        }
        best_hit.or(best_any).map(|(i, _)| i)
    }

    /// Would a request to `loc` currently hit the row buffer?
    #[must_use]
    pub fn would_row_hit(&self, loc: Location) -> bool {
        self.banks[self.bank_index(loc)].would_hit(loc.row)
    }

    /// Earliest cycle the bank holding `loc` can accept a command.
    #[must_use]
    pub fn bank_ready_at(&self, loc: Location) -> Cycle {
        self.banks[self.bank_index(loc)].ready_at()
    }

    /// Statistics for a single bank.
    #[must_use]
    pub fn bank_stats(&self, channel: u32, rank: u32, bank: u32) -> &BankStats {
        let loc = Location::new(channel, rank, bank, 0);
        &self.bank_stats[self.bank_index(loc)]
    }

    /// Aggregate statistics over the whole module. O(1): totals are
    /// maintained incrementally as commands are recorded.
    #[must_use]
    pub fn stats(&self) -> DramStats {
        DramStats {
            totals: self.totals,
            refresh_stalls: self.refresh_stalls,
        }
    }

    fn note_row_event(&mut self, idx: usize, event: RowEvent) {
        self.bank_stats[idx].record_row_event(event);
        self.totals.record_row_event(event);
    }

    fn note_op(&mut self, idx: usize, op: Op, bytes: u32) {
        self.bank_stats[idx].record_op(op, bytes);
        self.totals.record_op(op, bytes);
    }

    /// Clears all statistics (e.g. after a warm-up phase). Timing state
    /// (open rows, bank readiness) is preserved.
    pub fn reset_stats(&mut self) {
        for b in &mut self.bank_stats {
            *b = BankStats::default();
        }
        self.totals = BankStats::default();
        self.refresh_stalls = 0;
        self.bandwidth.reset();
    }

    /// Serializes the module's mutable state (banks, stats, queues,
    /// bandwidth accounting). The geometry and timing configuration are
    /// not written: a checkpoint is restored into a module freshly built
    /// from the same experiment configuration.
    pub fn save_state(&self, w: &mut bimodal_ckpt::SnapshotWriter) {
        use bimodal_ckpt::Snapshot;
        self.banks.save(w);
        self.bank_stats.save(w);
        self.totals.save(w);
        self.bank_epoch.save(w);
        self.rank_activates.save(w);
        self.bus_free_at.save(w);
        w.u64(self.refresh_stalls);
        w.usize(self.queue.len());
        for p in &self.queue {
            w.u64(p.id);
            p.req.save(w);
        }
        self.done.save(w);
        w.u64(self.next_id);
        self.class.save(w);
        self.bandwidth.save(w);
    }

    /// Restores state written by [`DramModule::save_state`] into a module
    /// built from the same configuration. Vector lengths are validated
    /// against the module's geometry so a checkpoint taken under a
    /// different configuration is rejected rather than silently applied.
    pub fn load_state(
        &mut self,
        r: &mut bimodal_ckpt::SnapshotReader<'_>,
    ) -> Result<(), bimodal_ckpt::CkptError> {
        use bimodal_ckpt::Snapshot;
        let banks: Vec<Bank> = Snapshot::load(r)?;
        let bank_stats: Vec<BankStats> = Snapshot::load(r)?;
        let totals: BankStats = Snapshot::load(r)?;
        let bank_epoch: Vec<u64> = Snapshot::load(r)?;
        let rank_activates: Vec<([Cycle; 4], u8)> = Snapshot::load(r)?;
        let bus_free_at: Vec<Cycle> = Snapshot::load(r)?;
        let n_banks = self.config.total_banks() as usize;
        let n_ranks = (self.config.channels * self.config.ranks_per_channel) as usize;
        if banks.len() != n_banks
            || bank_stats.len() != n_banks
            || bank_epoch.len() != n_banks
            || rank_activates.len() != n_ranks
            || bus_free_at.len() != self.config.channels as usize
        {
            return Err(r.corrupt(format!(
                "DRAM geometry mismatch: checkpoint has {} banks / {} ranks / {} channels, \
                 configuration expects {} / {} / {}",
                banks.len(),
                rank_activates.len(),
                bus_free_at.len(),
                n_banks,
                n_ranks,
                self.config.channels
            )));
        }
        let refresh_stalls = r.u64()?;
        let queue_len = r.bounded_len()?;
        let mut queue = VecDeque::with_capacity(queue_len);
        for _ in 0..queue_len {
            let id = r.u64()?;
            let req: Request = Snapshot::load(r)?;
            queue.push_back(Pending { id, req });
        }
        let done: Vec<(u64, Completion)> = Snapshot::load(r)?;
        let next_id = r.u64()?;
        let class: TrafficClass = Snapshot::load(r)?;
        let bandwidth: BandwidthTracker = Snapshot::load(r)?;
        if bandwidth.channels().len() != self.config.channels as usize
            || bandwidth.banks().len() != n_banks
        {
            return Err(r.corrupt("bandwidth tracker shape does not match DRAM geometry"));
        }
        self.banks = banks;
        self.bank_stats = bank_stats;
        self.totals = totals;
        self.bank_epoch = bank_epoch;
        self.rank_activates = rank_activates;
        self.bus_free_at = bus_free_at;
        self.refresh_stalls = refresh_stalls;
        self.queue = queue;
        self.done = done;
        self.next_id = next_id;
        self.class = class;
        self.bandwidth = bandwidth;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::timing::TimingParams;

    fn no_refresh_config() -> DramConfig {
        let mut c = DramConfig::stacked(2, 8);
        c.timing = TimingParams::stacked(2).without_refresh();
        c
    }

    fn loc(bank: u32, row: u64) -> Location {
        Location::new(0, 0, bank, row)
    }

    #[test]
    fn row_hit_is_faster_than_row_miss() {
        let mut m = DramModule::new(no_refresh_config());
        let a = m.access(Request::read(loc(0, 1), 64, 0));
        assert_eq!(a.row_event, RowEvent::Empty);
        let b = m.access(Request::read(loc(0, 1), 64, a.done + 100));
        assert_eq!(b.row_event, RowEvent::Hit);
        let c = m.access(Request::read(loc(0, 2), 64, b.done + 10_000));
        assert_eq!(c.row_event, RowEvent::Miss);
        assert!(b.latency() < a.latency());
        assert!(a.latency() < c.latency());
    }

    #[test]
    fn hit_latency_is_cl_plus_burst() {
        let mut m = DramModule::new(no_refresh_config());
        m.access(Request::read(loc(0, 1), 64, 0));
        let t = m.config().timing;
        let burst = m.config().burst_cycles(64);
        let b = m.access(Request::read(loc(0, 1), 64, 10_000));
        assert_eq!(b.latency(), t.cl + burst);
    }

    #[test]
    fn bus_contention_serializes_transfers_on_one_channel() {
        let mut m = DramModule::new(no_refresh_config());
        // Warm two different banks on the same channel.
        m.access(Request::read(loc(0, 1), 64, 0));
        m.access(Request::read(loc(1, 1), 64, 0));
        // Two large simultaneous row hits must share the bus.
        let a = m.access(Request::read(loc(0, 1), 2048, 10_000));
        let b = m.access(Request::read(loc(1, 1), 2048, 10_000));
        assert!(b.done >= a.done + m.config().burst_cycles(2048));
    }

    #[test]
    fn different_channels_do_not_share_a_bus() {
        let mut m = DramModule::new(no_refresh_config());
        m.access(Request::read(Location::new(0, 0, 0, 1), 64, 0));
        m.access(Request::read(Location::new(1, 0, 0, 1), 64, 0));
        let a = m.access(Request::read(Location::new(0, 0, 0, 1), 2048, 10_000));
        let b = m.access(Request::read(Location::new(1, 0, 0, 1), 2048, 10_000));
        assert_eq!(a.done, b.done);
    }

    #[test]
    fn open_row_hint_makes_later_column_access_fast() {
        let mut m = DramModule::new(no_refresh_config());
        let t = m.config().timing;
        let hint = m.open_row_hint(loc(3, 9), 1000);
        assert_eq!(hint.row_event, RowEvent::Empty);
        assert_eq!(hint.row_open, 1000 + t.rcd);
        let col = m.column_access(loc(3, 9), 64, Op::Read, hint.row_open);
        assert_eq!(col.latency(), t.cl + m.config().burst_cycles(64));
        // The stats recorded exactly one row event and one read.
        let s = m.bank_stats(0, 0, 3);
        assert_eq!(s.row_empty, 1);
        assert_eq!(s.row_hits, 0);
        assert_eq!(s.reads, 1);
    }

    #[test]
    fn column_access_reopens_row_when_necessary() {
        let mut m = DramModule::new(no_refresh_config());
        m.access(Request::read(loc(0, 5), 64, 0));
        // Row 5 open; a column access to row 6 must re-open transparently.
        let c = m.column_access(loc(0, 6), 64, Op::Read, 10_000);
        assert_eq!(c.row_event, RowEvent::Miss);
    }

    #[test]
    fn fr_fcfs_prefers_row_hit_over_older_conflict() {
        let mut m = DramModule::new(no_refresh_config());
        // Open row 1 in bank 0.
        m.access(Request::read(loc(0, 1), 64, 0));
        // Older request conflicts (row 2), newer one hits (row 1).
        let miss = m.submit(Request::read(loc(0, 2), 64, 10_000));
        let hit = m.submit(Request::read(loc(0, 1), 64, 10_001));
        let hit_done = m.resolve(hit);
        let miss_done = m.resolve(miss);
        assert_eq!(hit_done.row_event, RowEvent::Hit);
        // The hit was serviced first even though it arrived later.
        assert!(hit_done.done < miss_done.done);
    }

    #[test]
    fn fr_fcfs_falls_back_to_oldest_first() {
        let mut m = DramModule::new(no_refresh_config());
        let a = m.submit(Request::read(loc(0, 1), 64, 100));
        let b = m.submit(Request::read(loc(0, 2), 64, 50));
        let ca = m.resolve(a);
        let cb = m.resolve(b);
        // b is older, so it went first.
        assert!(cb.start <= ca.start);
    }

    #[test]
    #[should_panic(expected = "not pending")]
    fn resolving_unknown_request_panics() {
        let mut m = DramModule::new(no_refresh_config());
        let id = m.submit(Request::read(loc(0, 1), 64, 0));
        let _ = m.resolve(id);
        let _ = m.resolve(id); // second resolve: already retrieved
    }

    #[test]
    fn refresh_window_delays_requests() {
        let mut c = DramConfig::stacked(1, 2);
        c.timing.refi = 1000;
        c.timing.rfc = 200;
        let mut m = DramModule::new(c);
        // Request arriving just inside the first refresh window.
        let comp = m.access(Request::read(loc(0, 1), 64, 1001));
        assert!(comp.start >= 1200);
        assert_eq!(m.stats().refresh_stalls, 1);
    }

    #[test]
    fn refresh_closes_open_rows() {
        let mut c = DramConfig::stacked(1, 2);
        c.timing.refi = 10_000;
        c.timing.rfc = 200;
        let mut m = DramModule::new(c);
        m.access(Request::read(loc(0, 1), 64, 0));
        assert!(m.would_row_hit(loc(0, 1)));
        // Past the refresh boundary the row buffer is lost.
        let comp = m.access(Request::read(loc(0, 1), 64, 20_000));
        assert_eq!(comp.row_event, RowEvent::Empty);
    }

    #[test]
    fn stats_reset_preserves_timing_state() {
        let mut m = DramModule::new(no_refresh_config());
        m.access(Request::read(loc(0, 1), 64, 0));
        m.reset_stats();
        assert_eq!(m.stats().totals.accesses(), 0);
        // Row is still open though.
        assert!(m.would_row_hit(loc(0, 1)));
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_location_panics() {
        let mut m = DramModule::new(no_refresh_config());
        m.access(Request::read(Location::new(9, 0, 0, 0), 64, 0));
    }

    #[test]
    fn tfaw_limits_activation_bursts() {
        let mut c = no_refresh_config();
        c.timing.faw = 1000;
        let mut m = DramModule::new(c);
        // Five activates to five different banks of one rank, all at t=0.
        let mut starts = Vec::new();
        for b in 0..5 {
            let comp = m.access(Request::read(loc(b, 1), 64, 0));
            starts.push(comp.start);
        }
        // The fifth activate waits for the four-activate window.
        assert!(starts[4] >= starts[0] + 1000, "{starts:?}");
    }

    #[test]
    fn bandwidth_classes_sum_to_channel_busy_and_fit_elapsed() {
        let mut m = DramModule::new(no_refresh_config());
        let mut last_done = 0;
        m.set_class(TrafficClass::MetadataRead);
        for i in 0..4u32 {
            let c = m.access(Request::read(loc(i % 2, u64::from(i) + 1), 64, 0));
            last_done = last_done.max(c.done);
        }
        m.set_class(TrafficClass::DataHit);
        for i in 0..4u32 {
            let c = m.access(Request::write(loc(i % 2, 1), 64, last_done));
            last_done = last_done.max(c.done);
        }
        for ch in m.bandwidth().channels() {
            // Per-channel class cycles sum exactly to the channel's busy
            // cycles, and bus serialization bounds busy by elapsed time.
            assert_eq!(ch.busy.total_cycles(), ch.busy_cycles);
            assert!(ch.busy_cycles <= last_done);
            assert!(ch.busy_until <= last_done);
        }
        let s = m.bandwidth().summary(last_done, 8);
        assert!(s.class_totals.cycles[TrafficClass::MetadataRead.index()] > 0);
        assert!(s.class_totals.cycles[TrafficClass::DataHit.index()] > 0);
        assert_eq!(s.class_totals.total_cycles(), s.total_busy_cycles());
        // Queue waits were recorded for every transfer.
        let waits: u64 = m
            .bandwidth()
            .channels()
            .iter()
            .map(|c| c.queue_wait.count())
            .sum();
        assert_eq!(waits, 8);
    }

    #[test]
    fn refresh_windows_accrue_bank_refresh_cycles_not_bus_cycles() {
        let mut c = DramConfig::stacked(1, 2);
        c.timing.refi = 1000;
        c.timing.rfc = 200;
        let mut m = DramModule::new(c);
        m.access(Request::read(loc(0, 1), 64, 0));
        m.access(Request::read(loc(0, 1), 64, 5_500));
        let s = m.bandwidth().summary(6_000, 4);
        // Five refresh epochs crossed at 200 cycles each, on the bank.
        assert_eq!(s.bank_totals.cycles[TrafficClass::Refresh.index()], 1000);
        assert_eq!(s.class_totals.cycles[TrafficClass::Refresh.index()], 0);
    }

    #[test]
    fn closed_page_policy_never_row_hits() {
        let mut c = no_refresh_config();
        c.page_policy = crate::PagePolicy::Closed;
        let mut m = DramModule::new(c);
        let a = m.access(Request::read(loc(0, 1), 64, 0));
        assert_eq!(a.row_event, RowEvent::Empty);
        let b = m.access(Request::read(loc(0, 1), 64, a.done + 10_000));
        // Same row again, but the page was auto-precharged.
        assert_eq!(b.row_event, RowEvent::Empty);
        assert_eq!(m.stats().totals.row_hits, 0);
    }
}
