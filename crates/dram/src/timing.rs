//! DRAM timing parameters, expressed in CPU clock cycles.
//!
//! The simulation clock is the CPU clock (3.2 GHz in the paper's
//! configuration, Table IV). DRAM devices run at 1.6 GHz, so one DRAM clock
//! equals two CPU cycles; constructors take the CPU-per-DRAM clock ratio
//! and scale the JEDEC-style parameters accordingly.

/// A point in simulated time or a duration, in CPU clock cycles.
pub type Cycle = u64;

/// Core DRAM timing parameters, all in CPU cycles.
///
/// Only the parameters that matter at transaction level are modelled:
/// the activate/precharge/column timings that determine row-buffer hit and
/// miss latencies, write recovery, column-to-column spacing, and the
/// refresh interval/cycle pair.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct TimingParams {
    /// CAS latency (column access to first data), `CL`.
    pub cl: Cycle,
    /// Row-to-column delay (activate to column command), `tRCD`.
    pub rcd: Cycle,
    /// Row precharge time, `tRP`.
    pub rp: Cycle,
    /// Minimum row-open time (activate to precharge), `tRAS`.
    pub ras: Cycle,
    /// Write recovery time (end of write burst to precharge), `tWR`.
    pub wr: Cycle,
    /// Column-to-column command spacing, `tCCD`.
    pub ccd: Cycle,
    /// Average refresh interval, `tREFI`. Zero disables refresh.
    pub refi: Cycle,
    /// Refresh cycle time (rank blocked), `tRFC`.
    pub rfc: Cycle,
    /// Four-activate window, `tFAW`: at most four activates per rank in
    /// any window of this length. Zero disables the constraint.
    pub faw: Cycle,
}

impl TimingParams {
    /// DDR3-1600H-like timing (CL-nRCD-nRP = 9-9-9 at 1.6 GHz, as in
    /// Table IV) scaled by `cpu_per_dram_clk` (2 for a 3.2 GHz CPU).
    ///
    /// Refresh uses `tREFI` = 7.8 us and `tRFC` = 280 DRAM clocks, the
    /// values the paper lists for its off-chip DDR3 devices.
    #[must_use]
    pub fn ddr3_1600h(cpu_per_dram_clk: Cycle) -> Self {
        let k = cpu_per_dram_clk;
        TimingParams {
            cl: 9 * k,
            rcd: 9 * k,
            rp: 9 * k,
            ras: 28 * k,
            wr: 12 * k,
            ccd: 4 * k,
            // 7.8 us at 1.6 GHz = 12480 DRAM clocks.
            refi: 12_480 * k,
            rfc: 280 * k,
            faw: 32 * k,
        }
    }

    /// Stacked-DRAM timing. The paper configures the stack with the same
    /// core timings as the off-chip devices ("All the rest same as
    /// AlloyCache Baseline": 1.6 GHz, CL-nRCD-nRP = 9-9-9) but a much wider
    /// 128-bit bus; bandwidth differences come from the bus width, not the
    /// core timing.
    #[must_use]
    pub fn stacked(cpu_per_dram_clk: Cycle) -> Self {
        TimingParams::ddr3_1600h(cpu_per_dram_clk)
    }

    /// HBM2-class timing scaled by `cpu_per_dram_clk`. Core latencies in
    /// nanoseconds are close to DDR's, but the tighter column-to-column
    /// spacing (`tCCD` = 2), shorter `tFAW`, and smaller per-bank arrays
    /// (lower `tRAS`/`tRFC`) reflect the stacked part's banked parallelism.
    #[must_use]
    pub fn hbm2(cpu_per_dram_clk: Cycle) -> Self {
        let k = cpu_per_dram_clk;
        TimingParams {
            cl: 11 * k,
            rcd: 11 * k,
            rp: 11 * k,
            ras: 27 * k,
            wr: 13 * k,
            ccd: 2 * k,
            // 3.9 us refresh interval at 1.6 GHz.
            refi: 6_240 * k,
            rfc: 208 * k,
            faw: 12 * k,
        }
    }

    /// DDR5-4800-class timing scaled by `cpu_per_dram_clk`. Per-clock
    /// latencies are much larger than DDR3's (CL 40 vs 9) because the
    /// device clock is 3x faster; paired with a faster bus clock the
    /// result is higher bandwidth at higher first-word latency.
    #[must_use]
    pub fn ddr5_4800(cpu_per_dram_clk: Cycle) -> Self {
        let k = cpu_per_dram_clk;
        TimingParams {
            cl: 40 * k,
            rcd: 39 * k,
            rp: 39 * k,
            ras: 76 * k,
            wr: 58 * k,
            ccd: 8 * k,
            // 3.9 us at 2.4 GHz = 9360 DRAM clocks.
            refi: 9_360 * k,
            rfc: 984 * k,
            faw: 32 * k,
        }
    }

    /// Latency of a row-buffer hit up to first data (column access only).
    #[must_use]
    pub fn row_hit_latency(&self) -> Cycle {
        self.cl
    }

    /// Latency of an access to a closed bank (activate + column access).
    #[must_use]
    pub fn row_empty_latency(&self) -> Cycle {
        self.rcd + self.cl
    }

    /// Latency of a row-buffer conflict (precharge + activate + column).
    #[must_use]
    pub fn row_miss_latency(&self) -> Cycle {
        self.rp + self.rcd + self.cl
    }

    /// Returns timing with refresh disabled (useful for latency-isolated
    /// unit tests).
    #[must_use]
    pub fn without_refresh(mut self) -> Self {
        self.refi = 0;
        self.rfc = 0;
        self
    }

    /// Returns timing with the four-activate window disabled.
    #[must_use]
    pub fn without_faw(mut self) -> Self {
        self.faw = 0;
        self
    }
}

impl Default for TimingParams {
    fn default() -> Self {
        TimingParams::ddr3_1600h(2)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ddr3_values_scale_with_clock_ratio() {
        let t1 = TimingParams::ddr3_1600h(1);
        let t2 = TimingParams::ddr3_1600h(2);
        assert_eq!(t1.cl * 2, t2.cl);
        assert_eq!(t1.rp * 2, t2.rp);
        assert_eq!(t1.refi * 2, t2.refi);
    }

    #[test]
    fn latency_ordering_hit_empty_miss() {
        let t = TimingParams::default();
        assert!(t.row_hit_latency() < t.row_empty_latency());
        assert!(t.row_empty_latency() < t.row_miss_latency());
    }

    #[test]
    fn paper_configuration_is_nine_nine_nine() {
        let t = TimingParams::ddr3_1600h(2);
        // 9 DRAM clocks at a 2:1 CPU:DRAM ratio.
        assert_eq!(t.cl, 18);
        assert_eq!(t.rcd, 18);
        assert_eq!(t.rp, 18);
    }

    #[test]
    fn without_refresh_clears_refresh_fields() {
        let t = TimingParams::default().without_refresh();
        assert_eq!(t.refi, 0);
        assert_eq!(t.rfc, 0);
    }
}
