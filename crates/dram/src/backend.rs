//! Pluggable memory-substrate backends.
//!
//! The paper evaluates one substrate — a stacked-DRAM cache in front of
//! DDR3 — but the follow-on literature re-asks its hit-rate/latency/
//! bandwidth questions on other parts. A [`MemBackend`] describes how to
//! build the stacked (cache) and off-chip (far-tier) modules for a given
//! geometry, plus substrate-specific access behaviour; [`BackendKind`] is
//! the closed registry the CLI, checkpoints, and reports name backends by.

use crate::config::DramConfig;

/// A memory substrate: how to build the two DRAM modules a
/// [`crate::MemorySystem`] is made of, preserving the paper's per-core
/// channel/bank geometry.
pub trait MemBackend {
    /// Stable name recorded in reports, checkpoint fingerprints, and
    /// bench history keys.
    fn name(&self) -> &'static str;

    /// The stacked (cache) module for the given geometry.
    fn stacked(&self, channels: u32, banks_per_channel: u32) -> DramConfig;

    /// The off-chip (far-tier) module for the given geometry.
    fn offchip(&self, channels: u32, ranks_per_channel: u32) -> DramConfig;

    /// Whether the stacked part returns tag+data in a single burst
    /// (TDRAM-style). Tag-in-DRAM schemes then widen the tag read by one
    /// data block and skip the separate data column access on a read hit.
    fn fused_tag_data(&self) -> bool {
        false
    }
}

/// The paper's substrate: Table IV stacked DRAM over DDR3-1600H.
#[derive(Debug, Clone, Copy, Default)]
pub struct Paper2014;

impl MemBackend for Paper2014 {
    fn name(&self) -> &'static str {
        "paper2014"
    }
    fn stacked(&self, channels: u32, banks_per_channel: u32) -> DramConfig {
        DramConfig::stacked(channels, banks_per_channel)
    }
    fn offchip(&self, channels: u32, ranks_per_channel: u32) -> DramConfig {
        DramConfig::ddr3(channels, ranks_per_channel)
    }
}

/// HBM2-class stack (twice the banks, tighter column timing) over the
/// paper's DDR3 far tier.
#[derive(Debug, Clone, Copy, Default)]
pub struct Hbm2;

impl MemBackend for Hbm2 {
    fn name(&self) -> &'static str {
        "hbm2"
    }
    fn stacked(&self, channels: u32, banks_per_channel: u32) -> DramConfig {
        DramConfig::hbm2_stacked(channels, banks_per_channel)
    }
    fn offchip(&self, channels: u32, ranks_per_channel: u32) -> DramConfig {
        DramConfig::ddr3(channels, ranks_per_channel)
    }
}

/// The paper's stack over a DDR5-4800 far tier (double bus bandwidth,
/// higher first-word latency).
#[derive(Debug, Clone, Copy, Default)]
pub struct Ddr5;

impl MemBackend for Ddr5 {
    fn name(&self) -> &'static str {
        "ddr5"
    }
    fn stacked(&self, channels: u32, banks_per_channel: u32) -> DramConfig {
        DramConfig::stacked(channels, banks_per_channel)
    }
    fn offchip(&self, channels: u32, ranks_per_channel: u32) -> DramConfig {
        DramConfig::ddr5(channels, ranks_per_channel)
    }
}

/// The paper's stack over a slow 3DXPoint-like far tier with asymmetric
/// read/write media latencies.
#[derive(Debug, Clone, Copy, Default)]
pub struct PcmFar;

impl MemBackend for PcmFar {
    fn name(&self) -> &'static str {
        "pcm-far"
    }
    fn stacked(&self, channels: u32, banks_per_channel: u32) -> DramConfig {
        DramConfig::stacked(channels, banks_per_channel)
    }
    fn offchip(&self, channels: u32, ranks_per_channel: u32) -> DramConfig {
        DramConfig::pcm_far(channels, ranks_per_channel)
    }
}

/// Tag-enhanced stack: the paper's parts, but the stacked module returns
/// tag+data in one burst, collapsing the serialized hit probe.
#[derive(Debug, Clone, Copy, Default)]
pub struct Tdram;

impl MemBackend for Tdram {
    fn name(&self) -> &'static str {
        "tdram"
    }
    fn stacked(&self, channels: u32, banks_per_channel: u32) -> DramConfig {
        DramConfig::stacked(channels, banks_per_channel)
    }
    fn offchip(&self, channels: u32, ranks_per_channel: u32) -> DramConfig {
        DramConfig::ddr3(channels, ranks_per_channel)
    }
    fn fused_tag_data(&self) -> bool {
        true
    }
}

/// The closed set of registered backends.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum BackendKind {
    /// The paper's stacked-DRAM + DDR3 pair (the default).
    #[default]
    Paper2014,
    /// HBM2-class stack over DDR3.
    Hbm2,
    /// Paper stack over DDR5-4800.
    Ddr5,
    /// Paper stack over a slow 3DXPoint-like far tier.
    PcmFar,
    /// Tag-enhanced stack returning tag+data in one burst.
    Tdram,
}

impl BackendKind {
    /// Every registered backend, default first.
    pub const ALL: [BackendKind; 5] = [
        BackendKind::Paper2014,
        BackendKind::Hbm2,
        BackendKind::Ddr5,
        BackendKind::PcmFar,
        BackendKind::Tdram,
    ];

    /// The stable name the CLI, reports, and fingerprints use.
    #[must_use]
    pub fn name(self) -> &'static str {
        self.backend().name()
    }

    /// The backend implementation behind this kind.
    #[must_use]
    pub fn backend(self) -> &'static dyn MemBackend {
        match self {
            BackendKind::Paper2014 => &Paper2014,
            BackendKind::Hbm2 => &Hbm2,
            BackendKind::Ddr5 => &Ddr5,
            BackendKind::PcmFar => &PcmFar,
            BackendKind::Tdram => &Tdram,
        }
    }

    /// Whether this backend's stack returns tag+data in one burst.
    #[must_use]
    pub fn fused_tag_data(self) -> bool {
        self.backend().fused_tag_data()
    }

    /// Parses a backend name as given on the command line.
    ///
    /// # Errors
    ///
    /// Returns a message listing the valid names when `s` is unknown.
    pub fn parse(s: &str) -> Result<Self, String> {
        BackendKind::ALL
            .into_iter()
            .find(|k| k.name() == s)
            .ok_or_else(|| {
                let names: Vec<&str> = BackendKind::ALL.iter().map(|k| k.name()).collect();
                format!("unknown backend \"{s}\" (valid: {})", names.join(", "))
            })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_round_trip_through_parse() {
        for kind in BackendKind::ALL {
            assert_eq!(BackendKind::parse(kind.name()), Ok(kind));
        }
    }

    #[test]
    fn parse_rejects_unknown_names_listing_valid_ones() {
        let err = BackendKind::parse("bogus").unwrap_err();
        assert!(err.contains("unknown backend \"bogus\""), "{err}");
        for kind in BackendKind::ALL {
            assert!(err.contains(kind.name()), "{err} missing {}", kind.name());
        }
    }

    #[test]
    fn default_backend_matches_paper_configs() {
        let b = BackendKind::default();
        assert_eq!(b.name(), "paper2014");
        assert_eq!(b.backend().stacked(2, 8), DramConfig::stacked(2, 8));
        assert_eq!(b.backend().offchip(1, 2), DramConfig::ddr3(1, 2));
        assert!(!b.fused_tag_data());
    }

    #[test]
    fn only_tdram_fuses_tag_and_data() {
        for kind in BackendKind::ALL {
            assert_eq!(kind.fused_tag_data(), kind == BackendKind::Tdram);
        }
    }

    #[test]
    fn every_backend_builds_valid_configs() {
        for kind in BackendKind::ALL {
            let b = kind.backend();
            b.stacked(2, 8).validate().expect("stacked config");
            b.offchip(1, 2).validate().expect("offchip config");
        }
    }

    #[test]
    fn pcm_far_tier_has_asymmetric_media_latency() {
        let far = BackendKind::PcmFar.backend().offchip(1, 2);
        assert!(far.extra_read_lat > 0);
        assert!(far.extra_write_lat > far.extra_read_lat);
        // The near stack stays plain DRAM.
        let near = BackendKind::PcmFar.backend().stacked(2, 8);
        assert_eq!(near.extra_read_lat, 0);
        assert_eq!(near.extra_write_lat, 0);
    }
}
