//! Transaction-level DRAM timing model for stacked-DRAM cache studies.
//!
//! This crate implements the memory substrate used by the Bi-Modal DRAM
//! cache reproduction: a configurable DRAM module (channels, ranks, banks,
//! row buffers) with open-page policy, FR-FCFS request scheduling, refresh,
//! and data-bus occupancy, plus an off-chip main-memory wrapper with
//! row-rank-bank-mc-column address interleaving.
//!
//! The model is *transaction level*: each request is resolved into a
//! completion time by walking the bank/bus resource state (precharge,
//! activate, column access, burst transfer), rather than by simulating
//! individual DDR commands on a cycle-by-cycle wheel. This is the same
//! abstraction the paper's own trace-driven design-space simulator uses and
//! it faithfully reproduces row-buffer-hit-rate, bank-conflict and
//! bandwidth effects.
//!
//! # Example
//!
//! ```
//! use bimodal_dram::{DramConfig, DramModule, Location, Op, Request};
//!
//! // A stacked-DRAM stack: 2 channels x 8 banks, 2 KB pages, 128-bit bus.
//! let config = DramConfig::stacked(2, 8);
//! let mut dram = DramModule::new(config);
//! let loc = Location::new(0, 0, 3, 42);
//! let first = dram.access(Request::read(loc, 64, 1000));
//! let second = dram.access(Request::read(loc, 64, first.done));
//! // The second access hits the open row, so it is strictly faster.
//! assert!(second.done - second.arrival < first.done - first.arrival);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod address;
mod backend;
mod bank;
mod config;
mod controller;
mod deferred;
mod mainmem;
mod request;
mod stats;
mod system;
mod timing;

pub use address::{AddressMapping, DecodedAddress};
pub use backend::{BackendKind, Ddr5, Hbm2, MemBackend, Paper2014, PcmFar, Tdram};
pub use bank::{Bank, RowEvent};
pub use config::{DramConfig, PagePolicy};
pub use controller::{DramModule, OpenRowOutcome};
pub use deferred::{DeferredOp, DeferredQueue};
pub use mainmem::MainMemory;
pub use request::{Completion, Location, Op, Request};
pub use stats::{BankStats, DramStats};
pub use system::MemorySystem;
pub use timing::{Cycle, TimingParams};

// Re-exported so schemes can tag their traffic without depending on
// `bimodal-obs` directly.
pub use bimodal_obs::{BandwidthTracker, QueueDepthStats, TrafficClass};
