//! The two-level memory system handed to DRAM cache organizations.

use bimodal_obs::QueueDepthStats;

use crate::config::DramConfig;
use crate::controller::DramModule;
use crate::deferred::{DeferredOp, DeferredQueue};
use crate::mainmem::MainMemory;
use crate::request::Op;
use crate::timing::Cycle;

/// The memory substrate a DRAM cache organization operates on: the stacked
/// DRAM holding cache data/metadata, and the off-chip main memory behind
/// it.
///
/// Cache organizations place their sets on the stacked module explicitly
/// (they own the layout), and fetch / write back blocks from main memory by
/// physical address.
#[derive(Debug)]
pub struct MemorySystem {
    /// The stacked DRAM the cache lives in.
    pub cache_dram: DramModule,
    /// Off-chip main memory.
    pub main: MainMemory,
    deferred: DeferredQueue,
    queue_depth: QueueDepthStats,
}

impl MemorySystem {
    /// Builds a memory system from the two configurations.
    ///
    /// # Panics
    ///
    /// Panics if either configuration is invalid.
    #[must_use]
    pub fn new(stacked: DramConfig, offchip: DramConfig) -> Self {
        MemorySystem {
            cache_dram: DramModule::new(stacked),
            main: MainMemory::new(offchip),
            deferred: DeferredQueue::new(),
            queue_depth: QueueDepthStats::default(),
        }
    }

    /// Schedules a background operation (fill, metadata update, dirty
    /// writeback) for cycle `at`.
    ///
    /// The transaction-level resource model requires nondecreasing arrival
    /// times; background work triggered at an access's completion must be
    /// deferred and drained once simulation time catches up — see
    /// [`MemorySystem::drain_deferred`].
    pub fn defer(&mut self, at: Cycle, op: DeferredOp) {
        self.deferred.push(at, op);
        // High-water only: pushes carry no clock, so the time-weighted
        // integral advances in drain_deferred.
        self.queue_depth.note_depth(self.deferred.len() as u64);
    }

    /// Executes every deferred operation due at or before `now`. Call at
    /// the start of each demand access.
    pub fn drain_deferred(&mut self, now: Cycle) {
        // Only non-empty drains count as profiled work; the common empty
        // check would otherwise drown the span in no-op calls.
        let _span = (!self.deferred.is_empty())
            .then(|| bimodal_obs::span::enter(bimodal_obs::SpanId::DeferredDrain));
        while let Some((at, op)) = self.deferred.pop_due(now) {
            match op {
                DeferredOp::CacheWrite { loc, bytes, class } => {
                    self.cache_dram.set_class(class);
                    self.cache_dram.column_access(loc, bytes, Op::Write, at);
                }
                DeferredOp::MainWrite { addr, bytes, class } => {
                    self.main.set_class(class);
                    self.main.write(addr, bytes, at);
                }
            }
        }
        self.queue_depth.observe(now, self.deferred.len() as u64);
    }

    /// The deferred queue's depth profile (high-water mark and
    /// time-weighted mean).
    #[must_use]
    pub fn queue_depth(&self) -> QueueDepthStats {
        self.queue_depth
    }

    /// Number of deferred operations not yet executed.
    #[must_use]
    pub fn deferred_pending(&self) -> usize {
        self.deferred.len()
    }

    /// Fault injection: delays the `n`-th pending background operation by
    /// `extra` cycles (a late DRAM response). Returns false when fewer
    /// than `n + 1` operations are pending.
    pub fn tamper_delay(&mut self, n: usize, extra: Cycle) -> bool {
        self.deferred.delay_nth(n, extra)
    }

    /// Fault injection: drops the `n`-th pending background operation (a
    /// lost DRAM response). Returns false when fewer than `n + 1`
    /// operations are pending.
    pub fn tamper_drop(&mut self, n: usize) -> bool {
        self.deferred.drop_nth(n)
    }

    /// Fault injection: replays the `n`-th pending background operation (a
    /// duplicated DRAM response, costing bandwidth). Returns false when
    /// fewer than `n + 1` operations are pending.
    pub fn tamper_duplicate(&mut self, n: usize) -> bool {
        self.deferred.duplicate_nth(n)
    }

    /// The paper's quad-core memory system: 2 stacked channels with
    /// 8 banks each; 1 off-chip channel with 2 ranks (16 banks).
    #[must_use]
    pub fn quad_core() -> Self {
        MemorySystem::new(DramConfig::stacked(2, 8), DramConfig::ddr3(1, 2))
    }

    /// The paper's 8-core memory system: 4 stacked channels, 2 off-chip
    /// channels with 2 ranks each.
    #[must_use]
    pub fn eight_core() -> Self {
        MemorySystem::new(DramConfig::stacked(4, 8), DramConfig::ddr3(2, 2))
    }

    /// The paper's 16-core memory system: 8 stacked channels, 4 off-chip
    /// channels with 2 ranks each.
    #[must_use]
    pub fn sixteen_core() -> Self {
        MemorySystem::new(DramConfig::stacked(8, 8), DramConfig::ddr3(4, 2))
    }

    /// Clears statistics on both modules (keeps timing state).
    pub fn reset_stats(&mut self) {
        self.cache_dram.reset_stats();
        self.main.reset_stats();
        self.queue_depth.reset();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_match_table_iv_bank_counts() {
        assert_eq!(
            MemorySystem::quad_core().cache_dram.config().total_banks(),
            16
        );
        assert_eq!(
            MemorySystem::eight_core().cache_dram.config().total_banks(),
            32
        );
        assert_eq!(
            MemorySystem::sixteen_core()
                .cache_dram
                .config()
                .total_banks(),
            64
        );
        assert_eq!(
            MemorySystem::quad_core()
                .main
                .module()
                .config()
                .total_banks(),
            16
        );
        assert_eq!(
            MemorySystem::eight_core()
                .main
                .module()
                .config()
                .total_banks(),
            32
        );
        assert_eq!(
            MemorySystem::sixteen_core()
                .main
                .module()
                .config()
                .total_banks(),
            64
        );
    }

    #[test]
    fn reset_stats_clears_both_sides() {
        let mut s = MemorySystem::quad_core();
        use crate::request::{Location, Request};
        s.cache_dram
            .access(Request::read(Location::new(0, 0, 0, 0), 64, 0));
        s.main.read(0x1000, 64, 0);
        s.reset_stats();
        assert_eq!(s.cache_dram.stats().totals.accesses(), 0);
        assert_eq!(s.main.stats().totals.accesses(), 0);
    }
}
