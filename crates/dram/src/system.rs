//! The two-level memory system handed to DRAM cache organizations.

use bimodal_obs::{anatomy, QueueDepthStats};

use crate::backend::BackendKind;
use crate::config::DramConfig;
use crate::controller::DramModule;
use crate::deferred::{DeferredOp, DeferredQueue};
use crate::mainmem::MainMemory;
use crate::request::Op;
use crate::timing::Cycle;

/// The memory substrate a DRAM cache organization operates on: the stacked
/// DRAM holding cache data/metadata, and the off-chip main memory behind
/// it.
///
/// Cache organizations place their sets on the stacked module explicitly
/// (they own the layout), and fetch / write back blocks from main memory by
/// physical address.
#[derive(Debug)]
pub struct MemorySystem {
    /// The stacked DRAM the cache lives in.
    pub cache_dram: DramModule,
    /// Off-chip main memory.
    pub main: MainMemory,
    deferred: DeferredQueue,
    queue_depth: QueueDepthStats,
    backend: BackendKind,
}

impl MemorySystem {
    /// Builds a memory system from the two configurations.
    ///
    /// # Panics
    ///
    /// Panics if either configuration is invalid.
    #[must_use]
    pub fn new(stacked: DramConfig, offchip: DramConfig) -> Self {
        MemorySystem {
            cache_dram: DramModule::new(stacked),
            main: MainMemory::new(offchip),
            deferred: DeferredQueue::new(),
            queue_depth: QueueDepthStats::default(),
            backend: BackendKind::default(),
        }
    }

    /// Tags this system with the substrate backend its configurations came
    /// from. Purely descriptive for the default-built pair; schemes consult
    /// [`MemorySystem::fused_tag_data`] for TDRAM-style behaviour.
    #[must_use]
    pub fn with_backend(mut self, backend: BackendKind) -> Self {
        self.backend = backend;
        self
    }

    /// The substrate backend this system was built for.
    #[must_use]
    pub fn backend(&self) -> BackendKind {
        self.backend
    }

    /// Whether the stacked module returns tag+data in one burst, letting
    /// tag-in-DRAM schemes skip the separate data column access on a read
    /// hit.
    #[must_use]
    pub fn fused_tag_data(&self) -> bool {
        self.backend.fused_tag_data()
    }

    /// Schedules a background operation (fill, metadata update, dirty
    /// writeback) for cycle `at`.
    ///
    /// The transaction-level resource model requires nondecreasing arrival
    /// times; background work triggered at an access's completion must be
    /// deferred and drained once simulation time catches up — see
    /// [`MemorySystem::drain_deferred`].
    pub fn defer(&mut self, at: Cycle, op: DeferredOp) {
        self.deferred.push(at, op);
        // High-water only: pushes carry no clock, so the time-weighted
        // integral advances in drain_deferred.
        self.queue_depth.note_depth(self.deferred.len() as u64);
    }

    /// Executes every deferred operation due at or before `now`. Call at
    /// the start of each demand access.
    pub fn drain_deferred(&mut self, now: Cycle) {
        // Only non-empty drains count as profiled work; the common empty
        // check would otherwise drown the span in no-op calls.
        let _span = (!self.deferred.is_empty())
            .then(|| bimodal_obs::span::enter(bimodal_obs::SpanId::DeferredDrain));
        let anatomy_on = anatomy::active();
        if anatomy_on {
            self.cache_dram.set_deferred_mode(true);
            self.main.set_deferred_mode(true);
        }
        let mut drained_busy = 0u64;
        while let Some((at, op)) = self.deferred.pop_due(now) {
            match op {
                DeferredOp::CacheWrite { loc, bytes, class } => {
                    self.cache_dram.set_class(class);
                    let done = self
                        .cache_dram
                        .column_access(loc, bytes, Op::Write, at)
                        .done;
                    if anatomy_on {
                        // Credit the drained write's cycles to the class of
                        // the access that originated it, not to whichever
                        // demand access happens to trigger this drain.
                        if let Some(segs) = anatomy::take_dram() {
                            anatomy::record_background(class, segs);
                        }
                        drained_busy += done.saturating_sub(at);
                    }
                }
                DeferredOp::MainWrite { addr, bytes, class } => {
                    self.main.set_class(class);
                    let done = self.main.write(addr, bytes, at).done;
                    if anatomy_on {
                        // Row-crossing writes leave only the last
                        // sub-transfer's note; discard it and record the
                        // whole off-chip window instead.
                        let _ = anatomy::take_dram();
                        anatomy::record_background_offchip(class, done.saturating_sub(at));
                        drained_busy += done.saturating_sub(at);
                    }
                }
            }
        }
        if anatomy_on {
            self.cache_dram.set_deferred_mode(false);
            self.main.set_deferred_mode(false);
            bimodal_obs::span::add_cycles(bimodal_obs::SpanId::DeferredDrain, drained_busy);
        }
        self.queue_depth.observe(now, self.deferred.len() as u64);
    }

    /// The deferred queue's depth profile (high-water mark and
    /// time-weighted mean).
    #[must_use]
    pub fn queue_depth(&self) -> QueueDepthStats {
        self.queue_depth
    }

    /// Number of deferred operations not yet executed.
    #[must_use]
    pub fn deferred_pending(&self) -> usize {
        self.deferred.len()
    }

    /// Fault injection: delays the `n`-th pending background operation by
    /// `extra` cycles (a late DRAM response). Returns false when fewer
    /// than `n + 1` operations are pending.
    pub fn tamper_delay(&mut self, n: usize, extra: Cycle) -> bool {
        self.deferred.delay_nth(n, extra)
    }

    /// Fault injection: drops the `n`-th pending background operation (a
    /// lost DRAM response). Returns false when fewer than `n + 1`
    /// operations are pending.
    pub fn tamper_drop(&mut self, n: usize) -> bool {
        self.deferred.drop_nth(n)
    }

    /// Fault injection: replays the `n`-th pending background operation (a
    /// duplicated DRAM response, costing bandwidth). Returns false when
    /// fewer than `n + 1` operations are pending.
    pub fn tamper_duplicate(&mut self, n: usize) -> bool {
        self.deferred.duplicate_nth(n)
    }

    /// The paper's quad-core memory system: 2 stacked channels with
    /// 8 banks each; 1 off-chip channel with 2 ranks (16 banks).
    #[must_use]
    pub fn quad_core() -> Self {
        MemorySystem::new(DramConfig::stacked(2, 8), DramConfig::ddr3(1, 2))
    }

    /// The paper's 8-core memory system: 4 stacked channels, 2 off-chip
    /// channels with 2 ranks each.
    #[must_use]
    pub fn eight_core() -> Self {
        MemorySystem::new(DramConfig::stacked(4, 8), DramConfig::ddr3(2, 2))
    }

    /// The paper's 16-core memory system: 8 stacked channels, 4 off-chip
    /// channels with 2 ranks each.
    #[must_use]
    pub fn sixteen_core() -> Self {
        MemorySystem::new(DramConfig::stacked(8, 8), DramConfig::ddr3(4, 2))
    }

    /// Clears statistics on both modules (keeps timing state).
    pub fn reset_stats(&mut self) {
        self.cache_dram.reset_stats();
        self.main.reset_stats();
        self.queue_depth.reset();
    }

    /// Serializes the whole memory system's mutable state: both DRAM
    /// modules, the deferred background-operation queue, and the queue
    /// depth profile.
    pub fn save_state(&self, w: &mut bimodal_ckpt::SnapshotWriter) {
        use bimodal_ckpt::Snapshot;
        self.cache_dram.save_state(w);
        self.main.save_state(w);
        self.deferred.save(w);
        self.queue_depth.save(w);
    }

    /// Restores state written by [`MemorySystem::save_state`] into a
    /// system built from the same pair of configurations.
    pub fn load_state(
        &mut self,
        r: &mut bimodal_ckpt::SnapshotReader<'_>,
    ) -> Result<(), bimodal_ckpt::CkptError> {
        use bimodal_ckpt::Snapshot;
        self.cache_dram.load_state(r)?;
        self.main.load_state(r)?;
        self.deferred = Snapshot::load(r)?;
        self.queue_depth = Snapshot::load(r)?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_match_table_iv_bank_counts() {
        assert_eq!(
            MemorySystem::quad_core().cache_dram.config().total_banks(),
            16
        );
        assert_eq!(
            MemorySystem::eight_core().cache_dram.config().total_banks(),
            32
        );
        assert_eq!(
            MemorySystem::sixteen_core()
                .cache_dram
                .config()
                .total_banks(),
            64
        );
        assert_eq!(
            MemorySystem::quad_core()
                .main
                .module()
                .config()
                .total_banks(),
            16
        );
        assert_eq!(
            MemorySystem::eight_core()
                .main
                .module()
                .config()
                .total_banks(),
            32
        );
        assert_eq!(
            MemorySystem::sixteen_core()
                .main
                .module()
                .config()
                .total_banks(),
            64
        );
    }

    #[test]
    fn memory_system_state_round_trips_and_stays_deterministic() {
        use crate::request::{Location, Request};
        use bimodal_obs::TrafficClass;

        let drive = |s: &mut MemorySystem, base: Cycle| {
            for i in 0..32u64 {
                let at = base + i * 40;
                s.drain_deferred(at);
                let c = s.cache_dram.access(Request::read(
                    Location::new((i % 2) as u32, 0, (i % 8) as u32, i / 4),
                    64,
                    at,
                ));
                s.defer(
                    c.done + 10,
                    DeferredOp::MainWrite {
                        addr: i * 64,
                        bytes: 64,
                        class: TrafficClass::Writeback,
                    },
                );
                s.main.read(i * 4096, 64, at);
            }
        };

        let mut a = MemorySystem::quad_core();
        drive(&mut a, 0);

        let mut w = bimodal_ckpt::SnapshotWriter::new();
        a.save_state(&mut w);
        let bytes = w.into_bytes();
        let mut b = MemorySystem::quad_core();
        let mut r = bimodal_ckpt::SnapshotReader::new(&bytes, "mem");
        b.load_state(&mut r).expect("restore");
        assert!(r.is_exhausted(), "trailing bytes after restore");

        // Both systems must now evolve identically.
        drive(&mut a, 100_000);
        drive(&mut b, 100_000);
        assert_eq!(a.cache_dram.stats(), b.cache_dram.stats());
        assert_eq!(a.main.stats(), b.main.stats());
        assert_eq!(a.deferred_pending(), b.deferred_pending());
        assert_eq!(a.queue_depth(), b.queue_depth());

        // And re-saving yields byte-identical snapshots.
        let mut wa = bimodal_ckpt::SnapshotWriter::new();
        a.save_state(&mut wa);
        let mut wb = bimodal_ckpt::SnapshotWriter::new();
        b.save_state(&mut wb);
        assert_eq!(wa.into_bytes(), wb.into_bytes());
    }

    #[test]
    fn load_state_rejects_wrong_geometry() {
        let a = MemorySystem::quad_core();
        let mut w = bimodal_ckpt::SnapshotWriter::new();
        a.save_state(&mut w);
        let bytes = w.into_bytes();
        let mut b = MemorySystem::eight_core();
        let mut r = bimodal_ckpt::SnapshotReader::new(&bytes, "mem");
        assert!(b.load_state(&mut r).is_err());
    }

    #[test]
    fn reset_stats_clears_both_sides() {
        let mut s = MemorySystem::quad_core();
        use crate::request::{Location, Request};
        s.cache_dram
            .access(Request::read(Location::new(0, 0, 0, 0), 64, 0));
        s.main.read(0x1000, 64, 0);
        s.reset_stats();
        assert_eq!(s.cache_dram.stats().totals.accesses(), 0);
        assert_eq!(s.main.stats().totals.accesses(), 0);
    }

    /// The corrected drain attribution: a drained operation's cycles are
    /// credited to the traffic class of the access that originated it
    /// (the deferred op's own class), and the per-class tally's cycle
    /// total covers every drained op — nothing is silently re-credited
    /// to the demand access that happened to trigger the drain.
    #[test]
    fn drained_ops_credit_cycles_to_their_originating_class() {
        use crate::request::Location;
        use bimodal_obs::TrafficClass;

        anatomy::begin_thread();
        anatomy::start_access();
        let mut s = MemorySystem::quad_core();
        s.defer(
            10,
            DeferredOp::CacheWrite {
                loc: Location::new(0, 0, 0, 3),
                bytes: 64,
                class: TrafficClass::DataFill,
            },
        );
        s.defer(
            20,
            DeferredOp::CacheWrite {
                loc: Location::new(1, 0, 2, 5),
                bytes: 64,
                class: TrafficClass::MetadataWrite,
            },
        );
        s.defer(
            30,
            DeferredOp::MainWrite {
                addr: 0x4000,
                bytes: 64,
                class: TrafficClass::Writeback,
            },
        );
        s.drain_deferred(1_000);
        let tally = anatomy::take_background().expect("drained ops were recorded");
        // The demand-access builder stays untouched: background cycles
        // must not leak into the in-flight access's components.
        let rec = anatomy::finish_access(0);
        anatomy::end_thread();
        assert_eq!(
            rec.comps.iter().sum::<u64>(),
            0,
            "drained cycles must not be charged to the triggering access"
        );

        for class in [
            TrafficClass::DataFill,
            TrafficClass::MetadataWrite,
            TrafficClass::Writeback,
        ] {
            assert!(
                tally.class_cycles(class) > 0,
                "{}: drained cycles must land on the originating class",
                class.name()
            );
        }
        assert_eq!(
            tally.total_cycles(),
            tally.class_cycles(TrafficClass::DataFill)
                + tally.class_cycles(TrafficClass::MetadataWrite)
                + tally.class_cycles(TrafficClass::Writeback),
            "every drained cycle is accounted to exactly one class"
        );
    }
}
