//! Physical-address to DRAM-coordinate interleaving.
//!
//! The paper's memory controller interleaves addresses as
//! `row : rank : bank : mc(channel) : column` from most- to
//! least-significant bits (Table IV). Consecutive row-sized chunks of the
//! physical address space therefore rotate across channels, then banks,
//! then ranks, maximizing bank-level parallelism for streaming access.

use crate::config::DramConfig;
use crate::request::Location;

/// Decodes physical addresses into DRAM module coordinates using the
/// `row-rank-bank-mc-column` interleave.
/// # Example
///
/// ```
/// use bimodal_dram::{AddressMapping, DramConfig};
///
/// let m = AddressMapping::new(&DramConfig::ddr3(2, 2));
/// let d = m.decode(0x1_0000);
/// assert_eq!(m.encode_row(d.loc) + u64::from(d.column), 0x1_0000);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AddressMapping {
    channels: u64,
    ranks: u64,
    banks: u64,
    row_bytes: u64,
    column_bits: u32,
}

/// A fully decoded address: bank coordinates plus the byte offset within
/// the row.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct DecodedAddress {
    /// Bank coordinates and row.
    pub loc: Location,
    /// Byte offset within the row.
    pub column: u32,
}

impl AddressMapping {
    /// Builds a mapping for the given module geometry.
    #[must_use]
    pub fn new(config: &DramConfig) -> Self {
        AddressMapping {
            channels: u64::from(config.channels),
            ranks: u64::from(config.ranks_per_channel),
            banks: u64::from(config.banks_per_rank),
            row_bytes: u64::from(config.row_bytes),
            column_bits: config.row_bytes.trailing_zeros(),
        }
    }

    /// Decodes a physical byte address.
    #[must_use]
    pub fn decode(&self, addr: u64) -> DecodedAddress {
        let column = addr & (self.row_bytes - 1);
        let mut rest = addr >> self.column_bits;
        let channel = rest % self.channels;
        rest /= self.channels;
        let bank = rest % self.banks;
        rest /= self.banks;
        let rank = rest % self.ranks;
        rest /= self.ranks;
        let row = rest;
        DecodedAddress {
            loc: Location::new(channel as u32, rank as u32, bank as u32, row),
            column: column as u32,
        }
    }

    /// Re-encodes coordinates into the physical address of the row start
    /// (inverse of [`AddressMapping::decode`] with `column == 0`).
    #[must_use]
    pub fn encode_row(&self, loc: Location) -> u64 {
        let mut rest = loc.row;
        rest = rest * self.ranks + u64::from(loc.rank);
        rest = rest * self.banks + u64::from(loc.bank);
        rest = rest * self.channels + u64::from(loc.channel);
        rest << self.column_bits
    }

    /// Number of bits consumed by the column (row offset) field.
    #[must_use]
    pub fn column_bits(&self) -> u32 {
        self.column_bits
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mapping() -> AddressMapping {
        AddressMapping::new(&DramConfig::ddr3(2, 2))
    }

    #[test]
    fn column_is_low_bits() {
        let m = mapping();
        let d = m.decode(0x1234);
        assert_eq!(d.column, 0x1234 % 2048);
    }

    #[test]
    fn consecutive_rows_rotate_channels_first() {
        let m = mapping();
        let a = m.decode(0);
        let b = m.decode(2048);
        assert_ne!(a.loc.channel, b.loc.channel);
        assert_eq!(a.loc.bank, b.loc.bank);
        assert_eq!(a.loc.row, b.loc.row);
    }

    #[test]
    fn then_banks_then_ranks_then_rows() {
        let m = mapping(); // 2 channels, 8 banks, 2 ranks
        let stride = 2048u64;
        let after_channels = m.decode(2 * stride);
        assert_eq!(after_channels.loc.channel, 0);
        assert_eq!(after_channels.loc.bank, 1);

        let after_banks = m.decode(2 * 8 * stride);
        assert_eq!(after_banks.loc.bank, 0);
        assert_eq!(after_banks.loc.rank, 1);

        let after_ranks = m.decode(2 * 8 * 2 * stride);
        assert_eq!(after_ranks.loc.rank, 0);
        assert_eq!(after_ranks.loc.row, 1);
    }

    #[test]
    fn encode_is_inverse_of_decode() {
        let m = mapping();
        for addr in [0u64, 2048, 4096, 1 << 20, (1 << 33) + 6144] {
            let d = m.decode(addr);
            assert_eq!(m.encode_row(d.loc) + u64::from(d.column), addr);
        }
    }

    #[test]
    fn same_row_addresses_share_coordinates() {
        let m = mapping();
        let a = m.decode(0x4_0000);
        let b = m.decode(0x4_0000 + 100);
        assert_eq!(a.loc, b.loc);
    }
}
