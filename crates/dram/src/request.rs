//! Request and completion types exchanged with a [`crate::DramModule`].

use crate::timing::Cycle;
use crate::RowEvent;

/// Direction of a DRAM data transfer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Op {
    /// Read data out of the row buffer.
    Read,
    /// Write data into the row buffer.
    Write,
}

/// A physical location inside a DRAM module: which bank, and which row.
///
/// Callers that manage placement themselves (the DRAM cache lays its sets
/// out explicitly) construct `Location`s directly; off-chip accesses go
/// through [`crate::AddressMapping`] instead.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Location {
    /// Channel index.
    pub channel: u32,
    /// Rank index within the channel.
    pub rank: u32,
    /// Bank index within the rank.
    pub bank: u32,
    /// Row (DRAM page) index within the bank.
    pub row: u64,
}

impl Location {
    /// Creates a location from its four coordinates.
    #[must_use]
    pub fn new(channel: u32, rank: u32, bank: u32, row: u64) -> Self {
        Location {
            channel,
            rank,
            bank,
            row,
        }
    }
}

/// A single timed DRAM transaction.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Request {
    /// Target bank and row.
    pub loc: Location,
    /// Bytes moved over the data bus (one or more bursts).
    pub bytes: u32,
    /// Transfer direction.
    pub op: Op,
    /// Cycle at which the request reaches the controller.
    pub arrival: Cycle,
}

impl Request {
    /// Convenience constructor for a read.
    #[must_use]
    pub fn read(loc: Location, bytes: u32, arrival: Cycle) -> Self {
        Request {
            loc,
            bytes,
            op: Op::Read,
            arrival,
        }
    }

    /// Convenience constructor for a write.
    #[must_use]
    pub fn write(loc: Location, bytes: u32, arrival: Cycle) -> Self {
        Request {
            loc,
            bytes,
            op: Op::Write,
            arrival,
        }
    }
}

/// Timing outcome of a serviced request.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Completion {
    /// When the request arrived (copied from the request).
    pub arrival: Cycle,
    /// When the bank began working on the request (after queueing).
    pub start: Cycle,
    /// When the full data transfer finished.
    pub done: Cycle,
    /// Row-buffer outcome observed by the request.
    pub row_event: RowEvent,
}

impl Completion {
    /// Total latency from arrival to last data beat.
    #[must_use]
    pub fn latency(&self) -> Cycle {
        self.done.saturating_sub(self.arrival)
    }

    /// Time spent waiting before the bank started servicing the request.
    #[must_use]
    pub fn queue_delay(&self) -> Cycle {
        self.start.saturating_sub(self.arrival)
    }
}

impl bimodal_ckpt::Snapshot for Location {
    fn save(&self, w: &mut bimodal_ckpt::SnapshotWriter) {
        w.u32(self.channel);
        w.u32(self.rank);
        w.u32(self.bank);
        w.u64(self.row);
    }

    fn load(r: &mut bimodal_ckpt::SnapshotReader<'_>) -> Result<Self, bimodal_ckpt::CkptError> {
        Ok(Location {
            channel: r.u32()?,
            rank: r.u32()?,
            bank: r.u32()?,
            row: r.u64()?,
        })
    }
}

impl bimodal_ckpt::Snapshot for Op {
    fn save(&self, w: &mut bimodal_ckpt::SnapshotWriter) {
        w.u8(match self {
            Op::Read => 0,
            Op::Write => 1,
        });
    }

    fn load(r: &mut bimodal_ckpt::SnapshotReader<'_>) -> Result<Self, bimodal_ckpt::CkptError> {
        match r.u8()? {
            0 => Ok(Op::Read),
            1 => Ok(Op::Write),
            b => Err(r.corrupt(format!("invalid op tag {b}"))),
        }
    }
}

impl bimodal_ckpt::Snapshot for Request {
    fn save(&self, w: &mut bimodal_ckpt::SnapshotWriter) {
        self.loc.save(w);
        w.u32(self.bytes);
        self.op.save(w);
        w.u64(self.arrival);
    }

    fn load(r: &mut bimodal_ckpt::SnapshotReader<'_>) -> Result<Self, bimodal_ckpt::CkptError> {
        Ok(Request {
            loc: bimodal_ckpt::Snapshot::load(r)?,
            bytes: r.u32()?,
            op: bimodal_ckpt::Snapshot::load(r)?,
            arrival: r.u64()?,
        })
    }
}

impl bimodal_ckpt::Snapshot for Completion {
    fn save(&self, w: &mut bimodal_ckpt::SnapshotWriter) {
        w.u64(self.arrival);
        w.u64(self.start);
        w.u64(self.done);
        self.row_event.save(w);
    }

    fn load(r: &mut bimodal_ckpt::SnapshotReader<'_>) -> Result<Self, bimodal_ckpt::CkptError> {
        Ok(Completion {
            arrival: r.u64()?,
            start: r.u64()?,
            done: r.u64()?,
            row_event: bimodal_ckpt::Snapshot::load(r)?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn completion_latency_and_queue_delay() {
        let c = Completion {
            arrival: 100,
            start: 120,
            done: 160,
            row_event: RowEvent::Hit,
        };
        assert_eq!(c.latency(), 60);
        assert_eq!(c.queue_delay(), 20);
    }

    #[test]
    fn request_constructors_set_op() {
        let loc = Location::new(0, 0, 0, 0);
        assert_eq!(Request::read(loc, 64, 5).op, Op::Read);
        assert_eq!(Request::write(loc, 64, 5).op, Op::Write);
    }
}
