//! Time-ordered deferral of background DRAM operations.
//!
//! Cache fills, metadata updates and dirty writebacks happen *after* the
//! demand access that triggered them (e.g. when the off-chip fetch
//! returns). The transaction-level resource model requires operations to
//! arrive in nondecreasing time order — issuing a future-dated fill
//! immediately would reserve banks and buses ahead of demand accesses
//! that actually come first. Schemes therefore `defer` background
//! operations and `drain` them at the start of each access, once
//! simulation time has caught up.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use bimodal_obs::TrafficClass;

use crate::request::Location;
use crate::timing::Cycle;

/// A background DRAM operation to execute later.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum DeferredOp {
    /// Write `bytes` into the stacked cache at `loc` (a fill or metadata
    /// update); uses the open row if it still is.
    CacheWrite {
        /// Target bank/row.
        loc: Location,
        /// Bytes written.
        bytes: u32,
        /// Traffic class the write's bandwidth is attributed to.
        class: TrafficClass,
    },
    /// Write `bytes` to main memory at `addr` (a dirty writeback).
    MainWrite {
        /// Physical byte address.
        addr: u64,
        /// Bytes written.
        bytes: u32,
        /// Traffic class the write's bandwidth is attributed to.
        class: TrafficClass,
    },
}

/// Min-heap of deferred operations ordered by execution time.
#[derive(Debug, Default)]
pub struct DeferredQueue {
    heap: BinaryHeap<Reverse<(Cycle, u64, DeferredOp)>>,
    seq: u64,
}

impl DeferredQueue {
    /// Creates an empty queue.
    #[must_use]
    pub fn new() -> Self {
        DeferredQueue::default()
    }

    /// Schedules `op` for execution at cycle `at`.
    pub fn push(&mut self, at: Cycle, op: DeferredOp) {
        self.heap.push(Reverse((at, self.seq, op)));
        self.seq += 1;
    }

    /// Pops the next operation due at or before `now`.
    pub fn pop_due(&mut self, now: Cycle) -> Option<(Cycle, DeferredOp)> {
        if self
            .heap
            .peek()
            .is_some_and(|Reverse((at, _, _))| *at <= now)
        {
            self.heap.pop().map(|Reverse((at, _, op))| (at, op))
        } else {
            None
        }
    }

    /// Number of operations still queued.
    #[must_use]
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    fn sorted_entries(&mut self) -> Vec<(Cycle, u64, DeferredOp)> {
        let mut v: Vec<_> = std::mem::take(&mut self.heap)
            .into_iter()
            .map(|Reverse(e)| e)
            .collect();
        v.sort_unstable();
        v
    }

    fn rebuild(&mut self, entries: Vec<(Cycle, u64, DeferredOp)>) {
        self.heap = entries.into_iter().map(Reverse).collect();
    }

    /// Fault injection: delays the `n`-th pending operation (in execution
    /// order) by `extra` cycles, modelling a late DRAM response. Returns
    /// false when fewer than `n + 1` operations are pending.
    pub fn delay_nth(&mut self, n: usize, extra: Cycle) -> bool {
        let mut v = self.sorted_entries();
        let hit = n < v.len();
        if hit {
            v[n].0 += extra;
        }
        self.rebuild(v);
        hit
    }

    /// Fault injection: drops the `n`-th pending operation, modelling a
    /// lost DRAM response (the background write never happens). Returns
    /// false when fewer than `n + 1` operations are pending.
    pub fn drop_nth(&mut self, n: usize) -> bool {
        let mut v = self.sorted_entries();
        let hit = n < v.len();
        if hit {
            v.remove(n);
        }
        self.rebuild(v);
        hit
    }

    /// Fault injection: enqueues a second copy of the `n`-th pending
    /// operation, modelling a duplicated DRAM response (the write is
    /// replayed, costing bandwidth). Returns false when fewer than `n + 1`
    /// operations are pending.
    pub fn duplicate_nth(&mut self, n: usize) -> bool {
        let v = self.sorted_entries();
        let dup = v.get(n).map(|&(at, _, op)| (at, op));
        self.rebuild(v);
        match dup {
            Some((at, op)) => {
                self.push(at, op);
                true
            }
            None => false,
        }
    }

    /// Whether the queue is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

impl bimodal_ckpt::Snapshot for DeferredOp {
    fn save(&self, w: &mut bimodal_ckpt::SnapshotWriter) {
        match self {
            DeferredOp::CacheWrite { loc, bytes, class } => {
                w.u8(0);
                loc.save(w);
                w.u32(*bytes);
                class.save(w);
            }
            DeferredOp::MainWrite { addr, bytes, class } => {
                w.u8(1);
                w.u64(*addr);
                w.u32(*bytes);
                class.save(w);
            }
        }
    }

    fn load(r: &mut bimodal_ckpt::SnapshotReader<'_>) -> Result<Self, bimodal_ckpt::CkptError> {
        match r.u8()? {
            0 => Ok(DeferredOp::CacheWrite {
                loc: bimodal_ckpt::Snapshot::load(r)?,
                bytes: r.u32()?,
                class: bimodal_ckpt::Snapshot::load(r)?,
            }),
            1 => Ok(DeferredOp::MainWrite {
                addr: r.u64()?,
                bytes: r.u32()?,
                class: bimodal_ckpt::Snapshot::load(r)?,
            }),
            b => Err(r.corrupt(format!("invalid deferred op tag {b}"))),
        }
    }
}

impl bimodal_ckpt::Snapshot for DeferredQueue {
    fn save(&self, w: &mut bimodal_ckpt::SnapshotWriter) {
        // A BinaryHeap iterates in arbitrary order; sort so the snapshot
        // bytes are deterministic for a given logical queue state.
        let mut entries: Vec<(Cycle, u64, DeferredOp)> =
            self.heap.iter().map(|Reverse(e)| *e).collect();
        entries.sort_unstable();
        entries.save(w);
        w.u64(self.seq);
    }

    fn load(r: &mut bimodal_ckpt::SnapshotReader<'_>) -> Result<Self, bimodal_ckpt::CkptError> {
        let entries: Vec<(Cycle, u64, DeferredOp)> = bimodal_ckpt::Snapshot::load(r)?;
        let seq = r.u64()?;
        if entries.iter().any(|&(_, s, _)| s >= seq) {
            return Err(r.corrupt("deferred entry sequence number beyond next seq"));
        }
        let mut q = DeferredQueue::new();
        q.rebuild(entries);
        q.seq = seq;
        Ok(q)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order_and_only_when_due() {
        let mut q = DeferredQueue::new();
        let loc = Location::new(0, 0, 0, 0);
        q.push(
            200,
            DeferredOp::CacheWrite {
                loc,
                bytes: 64,
                class: TrafficClass::DataFill,
            },
        );
        q.push(
            100,
            DeferredOp::MainWrite {
                addr: 0,
                bytes: 64,
                class: TrafficClass::Writeback,
            },
        );
        assert_eq!(q.len(), 2);
        assert!(q.pop_due(50).is_none());
        let (at, op) = q.pop_due(150).expect("due");
        assert_eq!(at, 100);
        assert!(matches!(op, DeferredOp::MainWrite { .. }));
        assert!(q.pop_due(150).is_none());
        assert!(q.pop_due(300).is_some());
        assert!(q.is_empty());
    }

    #[test]
    fn tamper_ops_delay_drop_and_duplicate() {
        let loc = Location::new(0, 0, 0, 0);
        let fill = |q: &mut DeferredQueue| {
            q.push(
                100,
                DeferredOp::MainWrite {
                    addr: 0,
                    bytes: 64,
                    class: TrafficClass::Writeback,
                },
            );
            q.push(
                200,
                DeferredOp::CacheWrite {
                    loc,
                    bytes: 64,
                    class: TrafficClass::DataFill,
                },
            );
        };

        let mut q = DeferredQueue::new();
        fill(&mut q);
        assert!(q.delay_nth(0, 500));
        assert!(q.pop_due(200).is_some_and(|(at, _)| at == 200));
        assert!(q.pop_due(599).is_none(), "delayed to cycle 600");
        assert!(q.pop_due(600).is_some());

        let mut q = DeferredQueue::new();
        fill(&mut q);
        assert!(q.drop_nth(1));
        assert_eq!(q.len(), 1);
        assert!(q.pop_due(100).is_some_and(|(at, _)| at == 100));

        let mut q = DeferredQueue::new();
        fill(&mut q);
        assert!(q.duplicate_nth(0));
        assert_eq!(q.len(), 3);
        let (a, x) = q.pop_due(100).expect("original");
        let (b, y) = q.pop_due(100).expect("duplicate");
        assert_eq!((a, x), (b, y));

        let mut empty = DeferredQueue::new();
        assert!(!empty.delay_nth(0, 1));
        assert!(!empty.drop_nth(0));
        assert!(!empty.duplicate_nth(0));
    }

    #[test]
    fn fifo_within_same_cycle() {
        let mut q = DeferredQueue::new();
        let loc = Location::new(0, 0, 0, 0);
        q.push(
            10,
            DeferredOp::CacheWrite {
                loc,
                bytes: 1,
                class: TrafficClass::DataFill,
            },
        );
        q.push(
            10,
            DeferredOp::CacheWrite {
                loc,
                bytes: 2,
                class: TrafficClass::DataFill,
            },
        );
        let (_, a) = q.pop_due(10).expect("due");
        let (_, b) = q.pop_due(10).expect("due");
        assert_eq!(
            a,
            DeferredOp::CacheWrite {
                loc,
                bytes: 1,
                class: TrafficClass::DataFill
            }
        );
        assert_eq!(
            b,
            DeferredOp::CacheWrite {
                loc,
                bytes: 2,
                class: TrafficClass::DataFill
            }
        );
    }
}
