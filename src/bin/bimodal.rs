//! `bimodal` — command-line front end for the Bi-Modal DRAM cache
//! simulator.
//!
//! ```text
//! bimodal list
//! bimodal run --mix Q3 --scheme bimodal --accesses 30000 --cache-mb 8
//! bimodal compare --mix Q3
//! bimodal antt --mix E2 --scheme bimodal
//! bimodal sweep --mix Q3
//! bimodal record --program mcf --out mcf.bmt --n 100000
//! ```

use std::collections::HashMap;
use std::process::ExitCode;

use bimodal::prelude::*;
use bimodal::sim::sweep;
use bimodal::workloads::{spec_names, spec_profile, write_trace};

fn usage() -> &'static str {
    "usage: bimodal <command> [--flag value]...\n\
     \n\
     commands:\n\
     \x20 list                         mixes, schemes and programs\n\
     \x20 run     --mix <M> --scheme <S> [--accesses N] [--cache-mb C] [--seed K]\n\
     \x20 compare --mix <M> [--accesses N] [--cache-mb C]\n\
     \x20 antt    --mix <M> --scheme <S> [--accesses N] [--cache-mb C]\n\
     \x20 sweep   --mix <M> [--accesses N] [--cache-mb C]\n\
     \x20 record  --program <P> --out <FILE> [--n N] [--seed K]\n\
     \n\
     mixes: Q1..Q24 (4-core), E1..E16 (8-core), S1..S8 (16-core)\n\
     schemes: bimodal, bimodal-only, waylocator-only, fixed512, alloy,\n\
     \x20        lohhill, atcache, footprint, bimodal-mp"
}

fn parse_flags(args: &[String]) -> Result<HashMap<String, String>, String> {
    let mut flags = HashMap::new();
    let mut i = 0;
    while i < args.len() {
        let key = args[i]
            .strip_prefix("--")
            .ok_or_else(|| format!("expected a --flag, got {:?}", args[i]))?;
        let value = args
            .get(i + 1)
            .ok_or_else(|| format!("--{key} needs a value"))?;
        flags.insert(key.to_owned(), value.clone());
        i += 2;
    }
    Ok(flags)
}

fn parse_scheme(name: &str) -> Result<SchemeKind, String> {
    Ok(match name.to_ascii_lowercase().as_str() {
        "bimodal" => SchemeKind::BiModal,
        "bimodal-only" => SchemeKind::BiModalOnly,
        "waylocator-only" | "wl-only" => SchemeKind::WayLocatorOnly,
        "fixed512" => SchemeKind::Fixed512,
        "bimodal-mp" => SchemeKind::BiModalMissPredict,
        "alloy" | "alloycache" => SchemeKind::Alloy,
        "lohhill" | "loh-hill" => SchemeKind::LohHill,
        "atcache" => SchemeKind::AtCache,
        "footprint" | "fpc" => SchemeKind::Footprint,
        other => return Err(format!("unknown scheme {other:?}")),
    })
}

fn parse_mix(name: &str) -> Result<(WorkloadMix, SystemConfig), String> {
    let mix = WorkloadMix::quad(name)
        .or_else(|| WorkloadMix::eight(name))
        .or_else(|| WorkloadMix::sixteen(name))
        .ok_or_else(|| format!("unknown mix {name:?} (Q1..Q24, E1..E16, S1..S8)"))?;
    let system = match mix.cores() {
        4 => SystemConfig::quad_core().with_cache_mb(8),
        8 => SystemConfig::eight_core().with_cache_mb(16),
        _ => SystemConfig::sixteen_core().with_cache_mb(32),
    };
    Ok((mix, system))
}

fn configured_system(
    base: SystemConfig,
    flags: &HashMap<String, String>,
) -> Result<SystemConfig, String> {
    let mut system = base;
    if let Some(mb) = flags.get("cache-mb") {
        let mb: u64 = mb
            .parse()
            .map_err(|_| "cache-mb must be a number".to_owned())?;
        system = system.with_cache_mb(mb);
    }
    if let Some(seed) = flags.get("seed") {
        let seed: u64 = seed
            .parse()
            .map_err(|_| "seed must be a number".to_owned())?;
        system = system.with_seed(seed);
    }
    Ok(system)
}

fn accesses(flags: &HashMap<String, String>, default: u64) -> Result<u64, String> {
    match flags.get("accesses") {
        Some(v) => v
            .parse()
            .map_err(|_| "accesses must be a number".to_owned()),
        None => Ok(default),
    }
}

fn print_report(label: &str, r: &bimodal::sim::RunReport) {
    println!("== {label} ==");
    println!("accesses             : {}", r.dram_cache_accesses());
    println!(
        "hit rate             : {:6.2} %",
        r.scheme.hit_rate() * 100.0
    );
    println!(
        "locator hit rate     : {:6.2} %",
        r.scheme.locator_hit_rate() * 100.0
    );
    println!("avg access latency   : {:6.1} cycles", r.avg_latency());
    println!(
        "small-block accesses : {:6.2} %",
        r.scheme.small_block_fraction() * 100.0
    );
    println!(
        "off-chip traffic     : {:6.2} MB",
        r.offchip_bytes() as f64 / 1048576.0
    );
    println!(
        "wasted fetch bytes   : {:6.2} %",
        r.scheme.wasted_fetch_fraction() * 100.0
    );
}

fn cmd_list() {
    println!("4-core mixes : Q1..Q24");
    println!("8-core mixes : E1..E16");
    println!("16-core mixes: S1..S8");
    println!();
    println!("schemes: bimodal bimodal-only waylocator-only fixed512 bimodal-mp");
    println!("         alloy lohhill atcache footprint");
    println!();
    println!("programs:");
    for name in spec_names() {
        let p = spec_profile(name).expect("listed names resolve");
        println!(
            "  {name:12} {:5} MB footprint, mean gap {:4} cycles{}",
            p.footprint_bytes >> 20,
            p.mean_gap,
            if p.is_memory_intensive() {
                "  *memory-intensive*"
            } else {
                ""
            }
        );
    }
}

fn cmd_run(flags: &HashMap<String, String>) -> Result<(), String> {
    let mix_name = flags.get("mix").ok_or("run needs --mix")?;
    let scheme = parse_scheme(flags.get("scheme").ok_or("run needs --scheme")?)?;
    let (mix, base) = parse_mix(mix_name)?;
    let system = configured_system(base, flags)?;
    let n = accesses(flags, 30_000)?;
    let report = Simulation::new(system, scheme)
        .run_mix(&mix, n)
        .map_err(|e| e.to_string())?;
    print_report(&format!("{} on {}", scheme.name(), mix.name()), &report);
    Ok(())
}

fn cmd_compare(flags: &HashMap<String, String>) -> Result<(), String> {
    let mix_name = flags.get("mix").ok_or("compare needs --mix")?;
    let (mix, base) = parse_mix(mix_name)?;
    let system = configured_system(base, flags)?;
    let n = accesses(flags, 30_000)?;
    println!(
        "{:18} {:>8} {:>10} {:>12} {:>12} {:>10}",
        "scheme", "hit %", "locator %", "avg lat (cy)", "offchip MB", "wasted %"
    );
    for kind in SchemeKind::all() {
        let r = Simulation::new(system.clone(), kind)
            .run_mix(&mix, n)
            .map_err(|e| e.to_string())?;
        println!(
            "{:18} {:>8.2} {:>10.2} {:>12.1} {:>12.2} {:>10.2}",
            kind.name(),
            r.scheme.hit_rate() * 100.0,
            r.scheme.locator_hit_rate() * 100.0,
            r.avg_latency(),
            r.offchip_bytes() as f64 / 1048576.0,
            r.scheme.wasted_fetch_fraction() * 100.0,
        );
    }
    Ok(())
}

fn cmd_antt(flags: &HashMap<String, String>) -> Result<(), String> {
    let mix_name = flags.get("mix").ok_or("antt needs --mix")?;
    let scheme = parse_scheme(flags.get("scheme").ok_or("antt needs --scheme")?)?;
    let (mix, base) = parse_mix(mix_name)?;
    let system = configured_system(base, flags)?;
    let n = accesses(flags, 20_000)?;
    let ours = Simulation::new(system.clone(), scheme)
        .run_antt(&mix, n)
        .map_err(|e| e.to_string())?;
    let baseline = Simulation::new(system, SchemeKind::Alloy)
        .run_antt(&mix, n)
        .map_err(|e| e.to_string())?;
    println!(
        "{} ANTT on {}: {:.3}",
        scheme.name(),
        mix.name(),
        ours.antt()
    );
    println!("AlloyCache ANTT        : {:.3}", baseline.antt());
    println!(
        "improvement            : {:+.1} %",
        ours.improvement_over(&baseline)
    );
    Ok(())
}

fn cmd_sweep(flags: &HashMap<String, String>) -> Result<(), String> {
    let mix_name = flags.get("mix").ok_or("sweep needs --mix")?;
    let (mix, base) = parse_mix(mix_name)?;
    let system = configured_system(base, flags)?;
    let n = accesses(flags, 400_000)?;
    let scaled = mix.clone().with_footprint_scale(system.footprint_scale);
    println!(
        "miss rate vs block size (functional, {} MB):",
        system.cache_mb
    );
    let sizes = [64u32, 128, 256, 512, 1024, 2048, 4096];
    for (bs, rate) in
        sweep::miss_rate_vs_block_size(&scaled, system.cache_bytes(), &sizes, n, system.seed)
    {
        println!("  {bs:>5} B : {:5.1} % miss", rate * 100.0);
    }
    Ok(())
}

fn cmd_record(flags: &HashMap<String, String>) -> Result<(), String> {
    let program = flags.get("program").ok_or("record needs --program")?;
    let out = flags.get("out").ok_or("record needs --out")?;
    let n: usize = match flags.get("n") {
        Some(v) => v.parse().map_err(|_| "n must be a number".to_owned())?,
        None => 100_000,
    };
    let seed: u64 = match flags.get("seed") {
        Some(v) => v.parse().map_err(|_| "seed must be a number".to_owned())?,
        None => 7,
    };
    let spec = spec_profile(program).ok_or_else(|| format!("unknown program {program:?}"))?;
    let accesses: Vec<_> = spec.trace(seed, 0).take(n).collect();
    let written = write_trace(out, &accesses).map_err(|e| e.to_string())?;
    println!("wrote {written} accesses of {program} to {out}");
    Ok(())
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(command) = args.first() else {
        eprintln!("{}", usage());
        return ExitCode::FAILURE;
    };
    let flags = match parse_flags(&args[1..]) {
        Ok(f) => f,
        Err(e) => {
            eprintln!("error: {e}\n\n{}", usage());
            return ExitCode::FAILURE;
        }
    };
    let result = match command.as_str() {
        "list" => {
            cmd_list();
            Ok(())
        }
        "run" => cmd_run(&flags),
        "compare" => cmd_compare(&flags),
        "antt" => cmd_antt(&flags),
        "sweep" => cmd_sweep(&flags),
        "record" => cmd_record(&flags),
        "help" | "--help" | "-h" => {
            println!("{}", usage());
            Ok(())
        }
        other => Err(format!("unknown command {other:?}")),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}\n\n{}", usage());
            ExitCode::FAILURE
        }
    }
}
