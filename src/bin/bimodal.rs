//! `bimodal` — command-line front end for the Bi-Modal DRAM cache
//! simulator.
//!
//! ```text
//! bimodal list
//! bimodal run --mix Q3 --scheme bimodal --accesses 30000 --cache-mb 8
//! bimodal run --mix Q3 --scheme bimodal --json out.json --trace-out trace.json
//! bimodal compare --mix Q3 --json compare.json
//! bimodal antt --mix E2 --scheme bimodal
//! bimodal sweep --mix Q3
//! bimodal record --program mcf --out mcf.bmt --n 100000
//! ```

use std::collections::HashMap;
use std::process::ExitCode;
use std::sync::Arc;
use std::time::Duration;

use bimodal::exec::{FleetProgress, Manifest, RetryPolicy, UnitResult};
use bimodal::faults::{CampaignConfig, CampaignReport, FaultRates};
use bimodal::obs::{
    Heartbeat, Json, MetricValue, MetricsRegistry, ObsSummary, Observer, ObserverConfig,
    ProgressSink, SpanProfile,
};
use bimodal::prelude::*;
use bimodal::selfbench::GateOutcome;
use bimodal::sim::{sweep, CheckpointSpec, PrefetchMode, WatchdogConfig};
use bimodal::workloads::{spec_names, spec_profile, write_trace};

fn usage() -> &'static str {
    "usage: bimodal <command> [--flag value | --flag=value]...\n\
     \n\
     commands:\n\
     \x20 list                         mixes, schemes and programs\n\
     \x20 run     --mix <M> --scheme <S> [--accesses N] [--cache-mb C] [--seed K]\n\
     \x20         [--backend B]\n\
     \x20         [--warmup N] [--mlp N] [--prefetch N[:bypass]] [--profile]\n\
     \x20         [--anatomy] [--journeys N]\n\
     \x20         [--shards N] [--json FILE] [--trace-out FILE] [--epoch CYCLES]\n\
     \x20         [--heartbeat SECS] [--metrics-out FILE] [--metrics-format json|prom]\n\
     \x20         [--checkpoint FILE [--checkpoint-every N]] [--resume FILE]\n\
     \x20 compare --mix <M> [--accesses N] [--cache-mb C] [--seed K] [--jobs N]\n\
     \x20         [--backend B]\n\
     \x20         [--warmup N] [--mlp N] [--prefetch N[:bypass]] [--shards N]\n\
     \x20         [--json FILE]\n\
     \x20         [--heartbeat SECS] [--metrics-out FILE] [--metrics-format json|prom]\n\
     \x20         [--manifest DIR] [--checkpoint FILE [--checkpoint-every N]]\n\
     \x20         [--resume FILE]\n\
     \x20 antt    --mix <M> --scheme <S> [--accesses N] [--cache-mb C] [--seed K]\n\
     \x20         [--backend B]\n\
     \x20         [--warmup N] [--mlp N] [--prefetch N[:bypass]] [--jobs N] [--json FILE]\n\
     \x20         [--heartbeat SECS]\n\
     \x20 sweep   --mix <M> [--backend B] [--accesses N] [--cache-mb C] [--seed K] [--jobs N]\n\
     \x20         [--json FILE] [--heartbeat SECS] [--manifest DIR]\n\
     \x20 record  --program <P> --out <FILE> [--n N] [--seed K]\n\
     \x20 inject  --mix <M> [--backend B] [--scheme <S|all>] [--accesses N] [--seed K] [--seeds N]\n\
     \x20         [--metadata-rate P] [--multi-bit P] [--locator-rate P]\n\
     \x20         [--predictor-rate P] [--dram-rate P] [--ecc] [--antt]\n\
     \x20         [--shadow-every N] [--watchdog CYCLES | --no-watchdog]\n\
     \x20         [--jobs N] [--json FILE] [--trace-out FILE]\n\
     \x20         [--metrics-out FILE] [--metrics-format json|prom]\n\
     \x20         [--manifest DIR] [--retries N] [--retry-backoff-ms MS]\n\
     \x20 bench   [--quick] [--backend B] [--jobs N] [--shards N] [--min-speedup X] [--out FILE]\n\
     \x20         [--history FILE] [--check-history] [--window N] [--max-regress PCT]\n\
     \x20 bandwidth --mix <M> [--backend B] [--scheme <S|all>] [--accesses N] [--cache-mb C]\n\
     \x20         [--seed K] [--jobs N] [--json FILE]\n\
     \x20 latency --mix <M> [--backend B] [--scheme <S|all>] [--accesses N] [--cache-mb C]\n\
     \x20         [--seed K] [--jobs N] [--json FILE]\n\
     \x20         per-component cycle anatomy table (where do the cycles go)\n\
     \x20 explain --mix <M> --scheme <S> --addr X [--backend B] [--accesses N]\n\
     \x20         [--cache-mb C] [--seed K]\n\
     \x20         replay and print every journey touching address X\n\
     \x20 diff    <a.json> <b.json> [--threshold PCT] [--anatomy-threshold CY] [--exact]\n\
     \x20         exits 1 on drift/difference, 2 on unreadable or malformed input\n\
     \n\
     memory substrates:\n\
     \x20 --backend B       memory-substrate backend: paper2014 (default;\n\
     \x20                   the paper's stacked DRAM over DDR3), hbm2, ddr5,\n\
     \x20                   pcm-far (slow 3DXPoint-like far tier), tdram\n\
     \x20                   (tag+data in one burst); recorded in reports,\n\
     \x20                   checkpoint fingerprints, and bench history keys\n\
     \n\
     parallelism:\n\
     \x20 --jobs N          worker threads for fanned runs (default: all cores;\n\
     \x20                   results are bit-identical for any N)\n\
     \x20 --shards N        decode shards inside one run: per-core trace streams\n\
     \x20                   are pre-decoded in blocks on N worker threads and\n\
     \x20                   consumed in serial order, so reports are bit-identical\n\
     \x20                   for any N (default 1; `auto` uses all cores)\n\
     \x20 --seeds N         inject: fan the campaign over N consecutive seeds\n\
     \n\
     crash safety:\n\
     \x20 --checkpoint FILE    periodically snapshot the full run state to FILE\n\
     \x20                      (atomic, previous snapshot kept as FILE.prev;\n\
     \x20                      compare appends .<scheme> per unit)\n\
     \x20 --checkpoint-every N snapshot cadence in issued accesses (default 100000)\n\
     \x20 --resume FILE        continue from a snapshot; the final report is\n\
     \x20                      byte-identical to an uninterrupted run\n\
     \x20 --manifest DIR       journal finished campaign units in DIR and skip\n\
     \x20                      them when the same command is re-invoked\n\
     \x20 --retries N          inject fan-out: attempts per unit before it is\n\
     \x20                      reported failed (default 3)\n\
     \x20 --retry-backoff-ms M base backoff between attempts (default 100)\n\
     \x20 --exact              diff: require byte-identical reports (ignoring\n\
     \x20                      wall-clock and span-profile sections)\n\
     \n\
     observability:\n\
     \x20 --json FILE       write the full machine-readable report (counters,\n\
     \x20                   latency percentiles, epoch time series, wall clock)\n\
     \x20 --trace-out FILE  write a sampled event trace in Chrome trace-event\n\
     \x20                   format (load in chrome://tracing or Perfetto)\n\
     \x20 --stream          with --trace-out: write events to disk as they\n\
     \x20                   happen (constant memory; for multi-million-access\n\
     \x20                   runs the bounded in-memory ring would truncate)\n\
     \x20 --sample-every N  record every N-th access in the event trace\n\
     \x20                   (default 1; raise for long traced runs)\n\
     \x20 --epoch CYCLES    epoch length for the time series (default 100000)\n\
     \x20 --exact-tails[=N] reservoir-sample latencies for exact tail\n\
     \x20                   percentiles (default capacity 4096)\n\
     \x20 --heartbeat SECS  periodic progress line on stderr; with --jobs N\n\
     \x20                   on fanned commands, one aggregated fleet line\n\
     \x20 --profile         run: collect the hot-path span profile\n\
     \x20                   (per-phase call counts, host ns, sim cycles)\n\
     \x20 --anatomy         run: per-access latency anatomy (cycle accounting\n\
     \x20                   by component, split by hit/miss and class; adds\n\
     \x20                   an `anatomy` section to --json reports)\n\
     \x20 --journeys N      run: record every N-th access's full journey\n\
     \x20                   (implies --anatomy; with --trace-out the journeys\n\
     \x20                   ride along as Chrome flow events)\n\
     \x20 --anatomy-threshold CY  diff: gate per-component mean cycles with an\n\
     \x20                   absolute threshold of CY cycles\n\
     \x20 --metrics-out F   write the unified metrics snapshot to F\n\
     \x20                   (`-` writes to stderr)\n\
     \x20 --metrics-format  json (default) or prom (Prometheus text)\n\
     \n\
     bench trendline:\n\
     \x20 --history FILE    append this run's per-scheme accesses/sec to a\n\
     \x20                   JSONL history file\n\
     \x20 --check-history   compare the newest history point against the\n\
     \x20                   trailing median (no benchmark run); exits\n\
     \x20                   nonzero on a regression beyond --max-regress\n\
     \x20 --window N        trailing points for the median (default 5)\n\
     \x20 --max-regress PCT regression budget in percent (default 25)\n\
     \n\
     mixes: Q1..Q24 (4-core), E1..E16 (8-core), S1..S8 (16-core)\n\
     schemes: bimodal, bimodal-only, waylocator-only, fixed512, alloy,\n\
     \x20        lohhill, atcache, footprint, bimodal-mp\n\
     \x20        (inject also accepts `all`: the five-scheme comparison set)"
}

/// Flags that stand alone (`--ecc`); an explicit value still works via
/// `--flag=value`.
const BARE_FLAGS: &[&str] = &[
    "ecc",
    "antt",
    "no-watchdog",
    "exact-tails",
    "quick",
    "stream",
    "profile",
    "anatomy",
    "check-history",
    "exact",
];

/// Parses `--flag value` / `--flag=value` pairs, rejecting flags not in
/// `allowed`, duplicates, and flags without a value. Flags listed in
/// [`BARE_FLAGS`] need no value and default to `"true"`.
fn parse_flags(args: &[String], allowed: &[&str]) -> Result<HashMap<String, String>, String> {
    let mut flags = HashMap::new();
    let mut i = 0;
    while i < args.len() {
        let arg = &args[i];
        let body = arg
            .strip_prefix("--")
            .ok_or_else(|| format!("expected a --flag, got {arg:?}"))?;
        let (key, value) = if let Some((k, v)) = body.split_once('=') {
            (k.to_owned(), v.to_owned())
        } else if BARE_FLAGS.contains(&body) {
            (body.to_owned(), "true".to_owned())
        } else {
            let v = args
                .get(i + 1)
                .ok_or_else(|| format!("--{body} needs a value"))?;
            i += 1;
            (body.to_owned(), v.clone())
        };
        if !allowed.contains(&key.as_str()) {
            return Err(format!(
                "unknown flag --{key} for this command (allowed: {})",
                allowed
                    .iter()
                    .map(|a| format!("--{a}"))
                    .collect::<Vec<_>>()
                    .join(" ")
            ));
        }
        if flags.insert(key.clone(), value).is_some() {
            return Err(format!("duplicate flag --{key}"));
        }
        i += 1;
    }
    Ok(flags)
}

fn num<T: std::str::FromStr>(
    flags: &HashMap<String, String>,
    key: &str,
    default: T,
) -> Result<T, String> {
    match flags.get(key) {
        Some(v) => v.parse().map_err(|_| format!("--{key} must be a number")),
        None => Ok(default),
    }
}

/// A bare flag: absent = false, present = true, `--flag=false` works.
fn flag_bool(flags: &HashMap<String, String>, key: &str) -> Result<bool, String> {
    match flags.get(key).map(String::as_str) {
        None => Ok(false),
        Some("true" | "") => Ok(true),
        Some("false") => Ok(false),
        Some(other) => Err(format!("--{key} takes no value (got {other:?})")),
    }
}

fn parse_scheme(name: &str) -> Result<SchemeKind, String> {
    Ok(match name.to_ascii_lowercase().as_str() {
        "bimodal" => SchemeKind::BiModal,
        "bimodal-only" => SchemeKind::BiModalOnly,
        "waylocator-only" | "wl-only" => SchemeKind::WayLocatorOnly,
        "fixed512" => SchemeKind::Fixed512,
        "bimodal-mp" => SchemeKind::BiModalMissPredict,
        "alloy" | "alloycache" => SchemeKind::Alloy,
        "lohhill" | "loh-hill" => SchemeKind::LohHill,
        "atcache" => SchemeKind::AtCache,
        "footprint" | "fpc" => SchemeKind::Footprint,
        other => return Err(format!("unknown scheme {other:?}")),
    })
}

fn parse_mix(name: &str) -> Result<(WorkloadMix, SystemConfig), String> {
    let mix = WorkloadMix::quad(name)
        .or_else(|| WorkloadMix::eight(name))
        .or_else(|| WorkloadMix::sixteen(name))
        .ok_or_else(|| format!("unknown mix {name:?} (Q1..Q24, E1..E16, S1..S8)"))?;
    let system = match mix.cores() {
        4 => SystemConfig::quad_core().with_cache_mb(8),
        8 => SystemConfig::eight_core().with_cache_mb(16),
        _ => SystemConfig::sixteen_core().with_cache_mb(32),
    };
    Ok((mix, system))
}

fn configured_system(
    base: SystemConfig,
    flags: &HashMap<String, String>,
) -> Result<SystemConfig, String> {
    let mut system = base;
    if let Some(backend) = flags.get("backend") {
        // Applied first: the backend rebuilds both DRAM configurations,
        // so later overrides (row bytes via presets, seed, ...) survive.
        system = system.with_backend(BackendKind::parse(backend)?);
    }
    if let Some(mb) = flags.get("cache-mb") {
        let mb: u64 = mb
            .parse()
            .map_err(|_| "--cache-mb must be a number".to_owned())?;
        system = system.with_cache_mb(mb);
    }
    if let Some(seed) = flags.get("seed") {
        let seed: u64 = seed
            .parse()
            .map_err(|_| "--seed must be a number".to_owned())?;
        system = system.with_seed(seed);
    }
    if let Some(warmup) = flags.get("warmup") {
        let warmup: u64 = warmup
            .parse()
            .map_err(|_| "--warmup must be a number".to_owned())?;
        system = system.with_warmup(warmup);
    }
    if let Some(mlp) = flags.get("mlp") {
        let mlp: u32 = mlp
            .parse()
            .map_err(|_| "--mlp must be a number".to_owned())?;
        if mlp == 0 {
            return Err("--mlp must be at least 1".to_owned());
        }
        system = system.with_mlp(mlp);
    }
    Ok(system)
}

/// `--prefetch N` (next-N-lines) or `--prefetch N:bypass` (bypass fills
/// on prefetch misses, Table VI).
fn parse_prefetch(flags: &HashMap<String, String>) -> Result<Option<(u32, PrefetchMode)>, String> {
    let Some(v) = flags.get("prefetch") else {
        return Ok(None);
    };
    let (n, mode) = v.split_once(':').unwrap_or((v.as_str(), "normal"));
    let n: u32 = n
        .parse()
        .map_err(|_| "--prefetch must be N or N:bypass".to_owned())?;
    let mode = match mode.to_ascii_lowercase().as_str() {
        "normal" => PrefetchMode::Normal,
        "bypass" => PrefetchMode::Bypass,
        other => return Err(format!("unknown prefetch mode {other:?} (normal, bypass)")),
    };
    Ok(Some((n, mode)))
}

/// `--jobs N` (worker threads for fanned runs); absent or `auto` means
/// the host's available parallelism.
fn parse_jobs(flags: &HashMap<String, String>) -> Result<usize, String> {
    match flags.get("jobs").map(String::as_str) {
        None | Some("auto") => Ok(bimodal::exec::available_jobs()),
        Some(v) => match v.parse::<usize>() {
            Ok(n) if n >= 1 => Ok(n),
            _ => Err("--jobs must be a positive number or 'auto'".to_owned()),
        },
    }
}

/// `--shards N` (intra-run decode shards); absent means 1 (serial
/// decode), `auto` means the host's available parallelism.
fn parse_shards(flags: &HashMap<String, String>) -> Result<u32, String> {
    match flags.get("shards").map(String::as_str) {
        None => Ok(1),
        Some("auto") => Ok(u32::try_from(bimodal::exec::available_jobs()).unwrap_or(1)),
        Some(v) => match v.parse::<u32>() {
            Ok(n) if n >= 1 => Ok(n),
            _ => Err("--shards must be a positive number or 'auto'".to_owned()),
        },
    }
}

fn build_simulation(
    system: SystemConfig,
    kind: SchemeKind,
    flags: &HashMap<String, String>,
) -> Result<Simulation, String> {
    let mut sim = Simulation::new(system, kind).with_shards(parse_shards(flags)?);
    if let Some((n, mode)) = parse_prefetch(flags)? {
        sim = sim.with_prefetch(n, mode);
    }
    Ok(sim)
}

/// Builds the observer requested by `--json` / `--trace-out` /
/// `--heartbeat` / `--epoch`; disabled when none of them is present.
fn build_observer(flags: &HashMap<String, String>) -> Result<Observer, String> {
    let observing = [
        "json",
        "trace-out",
        "heartbeat",
        "exact-tails",
        "sample-every",
        "profile",
        "metrics-out",
        "anatomy",
        "journeys",
    ]
    .iter()
    .any(|k| flags.contains_key(*k));
    if !observing {
        return Ok(Observer::disabled());
    }
    let mut cfg = ObserverConfig::default().with_epoch_cycles(num(flags, "epoch", 100_000u64)?);
    if flags.contains_key("trace-out") {
        let sample_every: u32 = num(flags, "sample-every", 1)?;
        if sample_every == 0 {
            return Err("--sample-every must be at least 1".to_owned());
        }
        cfg = cfg.with_trace(262_144, sample_every);
    } else if flags.contains_key("sample-every") {
        return Err("--sample-every only applies with --trace-out".to_owned());
    }
    if let Some(cap) = flags.get("exact-tails") {
        let cap: usize = match cap.as_str() {
            "true" | "" => 4_096,
            n => n
                .parse()
                .map_err(|_| "--exact-tails takes an optional sample capacity".to_owned())?,
        };
        cfg = cfg.with_exact_tails(cap);
    }
    if let Some(interval) = parse_heartbeat(flags)? {
        cfg = cfg.with_heartbeat(interval);
    }
    if flag_bool(flags, "profile")? {
        cfg = cfg.with_spans();
    }
    if flag_bool(flags, "anatomy")? {
        cfg = cfg.with_anatomy();
    }
    if let Some(every) = flags.get("journeys") {
        let every: u64 = every
            .parse()
            .map_err(|_| "--journeys takes a sampling interval".to_owned())?;
        if every == 0 {
            return Err("--journeys must be at least 1".to_owned());
        }
        cfg = cfg.with_journeys(every);
    }
    Ok(Observer::enabled(cfg))
}

/// `--checkpoint FILE [--checkpoint-every N]` and `--resume FILE` as a
/// snapshot spec plus a resume path. `--checkpoint-every` without
/// `--checkpoint` is a hard error (a cadence with nowhere to write).
fn parse_crash_safety(
    flags: &HashMap<String, String>,
) -> Result<(Option<CheckpointSpec>, Option<std::path::PathBuf>), String> {
    let every: u64 = num(flags, "checkpoint-every", 100_000)?;
    let ckpt = match flags.get("checkpoint") {
        Some(path) => Some(
            CheckpointSpec::new(std::path::PathBuf::from(path), every)
                .map_err(|e| e.to_string())?,
        ),
        None if flags.contains_key("checkpoint-every") => {
            return Err("--checkpoint-every needs --checkpoint FILE".to_owned());
        }
        None => None,
    };
    Ok((ckpt, flags.get("resume").map(std::path::PathBuf::from)))
}

/// Rejects observer features whose buffers are not part of a snapshot,
/// so checkpoint/resume fails with a CLI-level message instead of a
/// mid-run engine error.
fn reject_unsnapshottable(flags: &HashMap<String, String>) -> Result<(), String> {
    for incompatible in ["trace-out", "profile", "stream", "journeys"] {
        if flags.contains_key(incompatible) {
            return Err(format!(
                "--{incompatible} cannot be combined with --checkpoint/--resume \
                 (event-trace, span and journey buffers are not snapshotted; \
                 --anatomy alone checkpoints fine)"
            ));
        }
    }
    Ok(())
}

/// `--heartbeat SECS` as a `Duration`, if the flag is present.
fn parse_heartbeat(flags: &HashMap<String, String>) -> Result<Option<Duration>, String> {
    match flags.get("heartbeat") {
        None => Ok(None),
        Some(secs) => {
            let secs: f64 = secs
                .parse()
                .map_err(|_| "--heartbeat must be seconds".to_owned())?;
            Ok(Some(Duration::from_secs_f64(secs.max(0.0))))
        }
    }
}

/// Metric-name prefix for a scheme (`BiModal+MP` → `bimodal_mp`).
fn metric_slug(name: &str) -> String {
    let mut slug = String::with_capacity(name.len());
    for c in name.chars() {
        if c.is_ascii_alphanumeric() {
            slug.push(c.to_ascii_lowercase());
        } else if !slug.ends_with('_') && !slug.is_empty() {
            slug.push('_');
        }
    }
    slug.trim_end_matches('_').to_owned()
}

/// Copies every metric of `src` into `dst` under `<prefix>.`.
fn merge_metrics_prefixed(dst: &mut MetricsRegistry, prefix: &str, src: &MetricsRegistry) {
    for name in src.names() {
        let full = format!("{prefix}.{name}");
        match src.get(name).expect("name came from the registry") {
            MetricValue::Counter(c) => dst.counter(full, *c),
            MetricValue::Gauge(g) => dst.gauge(full, *g),
            MetricValue::Histogram(h) => dst.histogram(full, *h),
        };
    }
}

/// Writes the metrics snapshot per `--metrics-out` / `--metrics-format`;
/// `--metrics-out -` writes the exposition to stderr.
fn write_metrics(flags: &HashMap<String, String>, reg: &MetricsRegistry) -> Result<(), String> {
    let Some(path) = flags.get("metrics-out") else {
        if flags.contains_key("metrics-format") {
            return Err("--metrics-format only applies with --metrics-out".to_owned());
        }
        return Ok(());
    };
    let format = flags.get("metrics-format").map_or("json", String::as_str);
    let body = match format {
        "json" => format!("{}\n", reg.to_json().to_pretty()),
        "prom" | "prometheus" => reg.to_prometheus(),
        other => return Err(format!("unknown --metrics-format {other:?} (json, prom)")),
    };
    if path == "-" {
        eprint!("{body}");
    } else {
        bimodal::ckpt::atomic_write_str(std::path::Path::new(path), &body)
            .map_err(|e| format!("writing {path}: {e}"))?;
        println!("wrote metrics ({format}) to {path}");
    }
    Ok(())
}

/// Prints the hot-path span profile table (silent when profiling was
/// off, so unprofiled output stays unchanged).
fn print_profile(p: &SpanProfile) {
    if !p.enabled {
        return;
    }
    println!("-- hot-path span profile --");
    println!(
        "{:16} {:>10} {:>12} {:>12} {:>9}",
        "span", "calls", "host us", "sim cycles", "ns/call"
    );
    for (id, s) in p.iter() {
        let per_call = if s.calls > 0 {
            s.host_ns as f64 / s.calls as f64
        } else {
            0.0
        };
        println!(
            "{:16} {:>10} {:>12.1} {:>12} {:>9.0}",
            id.name(),
            s.calls,
            s.host_ns as f64 / 1_000.0,
            s.sim_cycles,
            per_call,
        );
    }
}

/// All CLI-written reports go through one atomic temp-file+rename write,
/// so a crash mid-write never leaves a torn half-report behind.
fn write_json(path: &str, json: &Json) -> Result<(), String> {
    bimodal::ckpt::atomic_write_str(
        std::path::Path::new(path),
        &format!("{}\n", json.to_pretty()),
    )
    .map_err(|e| format!("writing {path}: {e}"))
}

/// Scopes a manifest unit label by substrate, so a journal written under
/// one backend is never replayed to satisfy a different one. The default
/// backend keeps the pre-backend labels, leaving existing journals valid.
fn backend_scoped(label: &str, backend: BackendKind) -> String {
    if backend == BackendKind::default() {
        label.to_owned()
    } else {
        format!("{label}@{}", backend.name())
    }
}

/// FNV-1a digest of a report's compact JSON, used as the manifest's
/// result fingerprint.
fn report_digest(j: &Json) -> String {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in j.to_compact().bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    format!("{h:016x}")
}

fn print_report(label: &str, r: &bimodal::sim::RunReport) {
    println!("== {label} ==");
    println!("accesses             : {}", r.dram_cache_accesses());
    println!(
        "hit rate             : {:6.2} %",
        r.scheme.hit_rate() * 100.0
    );
    println!(
        "locator hit rate     : {:6.2} %",
        r.scheme.locator_hit_rate() * 100.0
    );
    println!("avg access latency   : {:6.1} cycles", r.avg_latency());
    println!(
        "small-block accesses : {:6.2} %",
        r.scheme.small_block_fraction() * 100.0
    );
    println!(
        "off-chip traffic     : {:6.2} MB",
        r.offchip_bytes() as f64 / 1048576.0
    );
    println!(
        "wasted fetch bytes   : {:6.2} %",
        r.scheme.wasted_fetch_fraction() * 100.0
    );
}

fn print_obs(obs: &ObsSummary) {
    if obs.is_empty() {
        return;
    }
    println!("-- latency percentiles (cycles) --");
    for (name, s) in &obs.latency {
        if s.count == 0 {
            continue;
        }
        println!(
            "{name:9}: n={:<8} p50={:<6} p95={:<6} p99={:<6} max={}",
            s.count, s.p50, s.p95, s.p99, s.max
        );
    }
    if !obs.exact_tails.is_empty() {
        println!("-- exact tails (reservoir) --");
        for (name, t) in &obs.exact_tails {
            if t.count == 0 {
                continue;
            }
            println!(
                "{name:9}: n={:<8} p99={:<6} p99.9={:<6} max={}{}",
                t.count,
                t.p99,
                t.p999,
                t.max,
                if t.exact { "  (exact)" } else { "  (sampled)" }
            );
        }
    }
    if let Some(w) = &obs.wall {
        let phases = w
            .phases
            .iter()
            .map(|(n, secs)| format!("{n} {secs:.3}s"))
            .collect::<Vec<_>>()
            .join(", ");
        println!("-- wall clock --");
        println!("phases    : {phases}");
        println!(
            "throughput: {:.0} simulated cycles/s over {} cycles",
            w.cycles_per_second, w.sim_cycles
        );
    }
    println!("epochs recorded: {}", obs.epochs.len());
}

fn cmd_list() {
    println!("4-core mixes : Q1..Q24");
    println!("8-core mixes : E1..E16");
    println!("16-core mixes: S1..S8");
    println!();
    println!("schemes: bimodal bimodal-only waylocator-only fixed512 bimodal-mp");
    println!("         alloy lohhill atcache footprint");
    println!();
    println!("programs:");
    for name in spec_names() {
        let p = spec_profile(name).expect("listed names resolve");
        println!(
            "  {name:12} {:5} MB footprint, mean gap {:4} cycles{}",
            p.footprint_bytes >> 20,
            p.mean_gap,
            if p.is_memory_intensive() {
                "  *memory-intensive*"
            } else {
                ""
            }
        );
    }
}

fn cmd_run(flags: &HashMap<String, String>) -> Result<(), String> {
    let mix_name = flags.get("mix").ok_or("run needs --mix")?;
    let scheme = parse_scheme(flags.get("scheme").ok_or("run needs --scheme")?)?;
    let (mix, base) = parse_mix(mix_name)?;
    let system = configured_system(base, flags)?;
    let n = num(flags, "accesses", 30_000)?;
    let stream = flag_bool(flags, "stream")?;
    if stream && !flags.contains_key("trace-out") {
        return Err("--stream requires --trace-out".to_owned());
    }
    let mut obs = build_observer(flags)?;
    if stream {
        let path = flags.get("trace-out").expect("checked above");
        obs.trace
            .as_mut()
            .expect("tracing was enabled")
            .stream_to(std::path::Path::new(path))
            .map_err(|e| format!("opening trace stream {path}: {e}"))?;
    }
    let (ckpt, resume) = parse_crash_safety(flags)?;
    let report = if ckpt.is_some() || resume.is_some() {
        reject_unsnapshottable(flags)?;
        build_simulation(system, scheme, flags)?
            .run_mix_checkpointed(&mix, n, &mut obs, ckpt.as_ref(), resume.as_deref())
            .map_err(|e| e.to_string())?
    } else {
        build_simulation(system, scheme, flags)?
            .run_mix_observed(&mix, n, &mut obs)
            .map_err(|e| e.to_string())?
    };
    print_report(&format!("{} on {}", scheme.name(), mix.name()), &report);
    print_obs(&report.obs);
    print_profile(&report.profile);
    if let Some(a) = &report.anatomy {
        print_anatomy(a);
    }
    if let Some(jl) = &obs.journeys {
        println!(
            "recorded {} journey(s) (every {}-th access, {} dropped at capacity)",
            jl.entries().len(),
            jl.every(),
            jl.dropped()
        );
    }
    if let Some(path) = flags.get("trace-out") {
        // The per-channel bandwidth counter samples ride along as
        // Chrome "C" events so Perfetto draws stacked utilization lanes;
        // sampled journeys join them as flow events.
        let mut counters = obs.bandwidth.counter_events();
        if let Some(jl) = &obs.journeys {
            counters.extend(jl.chrome_trace_events());
        }
        let ring = obs.trace.as_mut().expect("tracing was enabled");
        if stream {
            let written = ring
                .finish_stream(&counters)
                .map_err(|e| format!("finishing trace stream {path}: {e}"))?;
            println!("streamed event trace ({written} events) to {path}");
        } else {
            write_json(path, &ring.chrome_trace_with(&counters))?;
            println!("wrote event trace ({} events) to {path}", ring.len());
        }
    }
    if let Some(path) = flags.get("json") {
        let mut j = report.to_json();
        j.set("mix", mix.name());
        write_json(path, &j)?;
        println!("wrote report JSON to {path}");
    }
    let mut reg = MetricsRegistry::new();
    report.fill_metrics(&mut reg);
    write_metrics(flags, &reg)?;
    Ok(())
}

/// Opens `--manifest DIR` as a campaign journal, if requested.
fn parse_manifest(
    flags: &HashMap<String, String>,
) -> Result<Option<(std::path::PathBuf, Manifest)>, String> {
    let Some(dir) = flags.get("manifest") else {
        return Ok(None);
    };
    let dir = std::path::PathBuf::from(dir);
    let manifest =
        Manifest::open(&dir).map_err(|e| format!("opening manifest {}: {e}", dir.display()))?;
    Ok(Some((dir, manifest)))
}

/// Loads the journalled report of a finished unit back from its manifest
/// directory. Returns `None` (re-run the unit) when the stored file is
/// missing, unreadable, or no longer matches the journalled digest.
fn load_cached_unit(dir: &std::path::Path, file: &str, digest: &str) -> Option<Json> {
    let text = std::fs::read_to_string(dir.join(file)).ok()?;
    let j = Json::parse(&text).ok()?;
    (report_digest(&j) == digest).then_some(j)
}

fn cmd_compare(flags: &HashMap<String, String>) -> Result<(), String> {
    let mix_name = flags.get("mix").ok_or("compare needs --mix")?;
    let (mix, base) = parse_mix(mix_name)?;
    let system = configured_system(base, flags)?;
    let n = num(flags, "accesses", 30_000)?;
    let jobs = parse_jobs(flags)?;
    let (ckpt, resume) = parse_crash_safety(flags)?;
    let journal = parse_manifest(flags)?;
    if journal.is_some() && flags.contains_key("metrics-out") {
        return Err(
            "--metrics-out cannot be combined with --manifest (units replayed \
             from the journal have no metrics registry); re-run without --manifest"
                .to_owned(),
        );
    }
    // Units already journalled as complete replay their stored report;
    // a missing or digest-mismatched file silently re-runs the unit.
    let mut cached: HashMap<String, Json> = HashMap::new();
    if let Some((dir, manifest)) = &journal {
        for kind in SchemeKind::all() {
            let unit = backend_scoped(kind.name(), system.backend);
            if let Some(digest) = manifest.digest(&unit) {
                let file = format!("{}.json", metric_slug(&unit));
                if let Some(j) = load_cached_unit(dir, &file, digest) {
                    cached.insert(kind.name().to_owned(), j);
                }
            }
        }
    }
    let manifest = journal.map(|(dir, m)| (dir, std::sync::Mutex::new(m)));
    // Each scheme is an independent unit (own seeded scheme + memory);
    // results come back in canonical scheme order, so the table and the
    // JSON are bit-identical for any --jobs value.
    let sims = SchemeKind::all()
        .into_iter()
        .filter(|kind| !cached.contains_key(kind.name()))
        .map(|kind| build_simulation(system.clone(), kind, flags).map(|s| (kind, s)))
        .collect::<Result<Vec<_>, _>>()?;
    // Each worker forwards rate-limited progress deltas to one shared
    // fleet aggregate, so --heartbeat under --jobs prints a single
    // merged line instead of N interleaved ones (or nothing).
    let fleet = parse_heartbeat(flags)?
        .map(|interval| Arc::new(FleetProgress::new("schemes", sims.len(), interval)));
    let runs = bimodal::exec::map_indexed(jobs, sims, |idx, (kind, sim)| {
        let mut obs = Observer::disabled();
        if let Some(fleet) = &fleet {
            obs.heartbeat = Some(Heartbeat::to_sink(
                fleet.interval(),
                Arc::clone(fleet) as Arc<dyn ProgressSink>,
                idx,
            ));
        }
        let slug = metric_slug(kind.name());
        // --checkpoint/--resume act as per-scheme templates: each unit
        // snapshots to (and resumes from) FILE.<scheme>. A missing
        // per-unit snapshot simply starts that unit fresh.
        let unit_ckpt = ckpt.as_ref().map(|c| {
            CheckpointSpec::new(
                std::path::PathBuf::from(format!("{}.{slug}", c.path.display())),
                c.every,
            )
            .expect("cadence was validated when parsing the flag")
        });
        let unit_resume = resume.as_ref().and_then(|r| {
            let p = std::path::PathBuf::from(format!("{}.{slug}", r.display()));
            p.exists().then_some(p)
        });
        let run = if unit_ckpt.is_some() || unit_resume.is_some() {
            sim.run_mix_checkpointed(
                &mix,
                n,
                &mut obs,
                unit_ckpt.as_ref(),
                unit_resume.as_deref(),
            )
        } else {
            sim.run_mix_observed(&mix, n, &mut obs)
        }
        .map_err(|e| e.to_string());
        // Journal the finished unit right away (stored report first,
        // then the manifest line), so a crash between units loses at
        // most the unit that was still in flight.
        if let (Ok(r), Some((dir, m))) = (&run, &manifest) {
            let journalled = (|| -> Result<(), String> {
                let j = r.to_json();
                let unit = backend_scoped(kind.name(), system.backend);
                let file = format!("{}.json", metric_slug(&unit));
                write_json(&dir.join(file).display().to_string(), &j)?;
                m.lock()
                    .expect("manifest lock")
                    .record(&unit, &report_digest(&j))
                    .map_err(|e| e.to_string())
            })();
            if let Err(e) = journalled {
                eprintln!("warning: could not journal {}: {e}", kind.name());
            }
        }
        (kind, run)
    });
    if let Some(fleet) = &fleet {
        fleet.finish();
    }
    println!(
        "{:18} {:>8} {:>10} {:>12} {:>12} {:>10}",
        "scheme", "hit %", "locator %", "avg lat (cy)", "offchip MB", "wasted %"
    );
    let mut fresh: HashMap<String, bimodal::sim::RunReport> = HashMap::new();
    for (kind, run) in runs {
        fresh.insert(kind.name().to_owned(), run?);
    }
    let mut reports = Vec::new();
    let mut reg = MetricsRegistry::new();
    for kind in SchemeKind::all() {
        if let Some(r) = fresh.remove(kind.name()) {
            println!(
                "{:18} {:>8.2} {:>10.2} {:>12.1} {:>12.2} {:>10.2}",
                kind.name(),
                r.scheme.hit_rate() * 100.0,
                r.scheme.locator_hit_rate() * 100.0,
                r.avg_latency(),
                r.offchip_bytes() as f64 / 1048576.0,
                r.scheme.wasted_fetch_fraction() * 100.0,
            );
            if flags.contains_key("metrics-out") {
                let mut one = MetricsRegistry::new();
                r.fill_metrics(&mut one);
                merge_metrics_prefixed(&mut reg, &metric_slug(kind.name()), &one);
            }
            reports.push(r.to_json());
        } else {
            let j = cached
                .remove(kind.name())
                .expect("every scheme is either fresh or cached");
            let v = |path: &[&str]| json_num(&j, path).unwrap_or(f64::NAN);
            println!(
                "{:18} {:>8.2} {:>10.2} {:>12.1} {:>12.2} {:>10.2}  (from manifest)",
                kind.name(),
                v(&["stats", "hit_rate"]) * 100.0,
                v(&["stats", "locator_hit_rate"]) * 100.0,
                v(&["avg_latency"]),
                v(&["offchip_bytes"]) / 1048576.0,
                v(&["stats", "wasted_fetch_fraction"]) * 100.0,
            );
            reports.push(j);
        }
    }
    write_metrics(flags, &reg)?;
    if let Some(path) = flags.get("json") {
        let mut j = Json::object();
        j.set("command", "compare")
            .set("mix", mix.name())
            .set("accesses_per_core", n)
            .set("reports", Json::Arr(reports));
        write_json(path, &j)?;
        println!("wrote comparison JSON to {path}");
    }
    Ok(())
}

fn cmd_antt(flags: &HashMap<String, String>) -> Result<(), String> {
    let mix_name = flags.get("mix").ok_or("antt needs --mix")?;
    let scheme = parse_scheme(flags.get("scheme").ok_or("antt needs --scheme")?)?;
    let (mix, base) = parse_mix(mix_name)?;
    let system = configured_system(base, flags)?;
    let n = num(flags, "accesses", 20_000)?;
    let jobs = parse_jobs(flags)?;
    let heartbeat = parse_heartbeat(flags)?;
    // One fleet aggregate per antt invocation: the multiprogrammed run
    // plus one standalone per program are the fanned units.
    let fleet_for = |interval| Arc::new(FleetProgress::new("programs", 1 + mix.cores(), interval));
    let run_one = |kind: SchemeKind| -> Result<bimodal::sim::AnttReport, String> {
        let fleet = heartbeat.map(fleet_for);
        let r = build_simulation(system.clone(), kind, flags)?
            .run_antt_jobs_with_progress(&mix, n, jobs, fleet.as_ref())
            .map_err(|e| e.to_string())?;
        if let Some(fleet) = &fleet {
            fleet.finish();
        }
        Ok(r)
    };
    let ours = run_one(scheme)?;
    let baseline = run_one(SchemeKind::Alloy)?;
    println!(
        "{} ANTT on {}: {:.3}",
        scheme.name(),
        mix.name(),
        ours.antt()
    );
    println!("AlloyCache ANTT        : {:.3}", baseline.antt());
    println!(
        "improvement            : {:+.1} %",
        ours.improvement_over(&baseline)
    );
    if let Some(path) = flags.get("json") {
        let mut j = Json::object();
        j.set("command", "antt")
            .set("mix", mix.name())
            .set("accesses_per_core", n)
            .set("scheme", ours.to_json())
            .set("baseline", baseline.to_json())
            .set("improvement_percent", ours.improvement_over(&baseline));
        write_json(path, &j)?;
        println!("wrote ANTT JSON to {path}");
    }
    Ok(())
}

fn cmd_sweep(flags: &HashMap<String, String>) -> Result<(), String> {
    let mix_name = flags.get("mix").ok_or("sweep needs --mix")?;
    let (mix, base) = parse_mix(mix_name)?;
    let system = configured_system(base, flags)?;
    let n = num(flags, "accesses", 400_000)?;
    let scaled = mix.clone().with_footprint_scale(system.footprint_scale);
    println!(
        "miss rate vs block size (functional, {} MB):",
        system.cache_mb
    );
    let sizes = [64u32, 128, 256, 512, 1024, 2048, 4096];
    // A sweep point's result is one f64, so the manifest digest *is* the
    // result (the miss rate's bit pattern): journalled points replay
    // without any stored report file.
    let mut manifest = parse_manifest(flags)?.map(|(_, m)| m);
    let mut done: HashMap<u32, f64> = HashMap::new();
    if let Some(m) = &manifest {
        for &bs in &sizes {
            if let Some(bits) = m
                .digest(&backend_scoped(&format!("bs{bs}"), system.backend))
                .and_then(|d| u64::from_str_radix(d, 16).ok())
            {
                done.insert(bs, f64::from_bits(bits));
            }
        }
    }
    let pending: Vec<u32> = sizes
        .iter()
        .copied()
        .filter(|bs| !done.contains_key(bs))
        .collect();
    // The functional sweep has no engine heartbeat; progress is
    // unit-granular (one tick per finished block size).
    let fleet = parse_heartbeat(flags)?
        .map(|interval| Arc::new(FleetProgress::new("points", pending.len(), interval)));
    let fresh = if pending.is_empty() {
        Vec::new()
    } else {
        sweep::miss_rate_vs_block_size_with_progress(
            &scaled,
            system.cache_bytes(),
            &pending,
            n,
            system.seed,
            parse_jobs(flags)?,
            fleet.as_ref(),
        )
    };
    if let Some(fleet) = &fleet {
        fleet.finish();
    }
    if let Some(m) = &mut manifest {
        for &(bs, rate) in &fresh {
            m.record(
                &backend_scoped(&format!("bs{bs}"), system.backend),
                &format!("{:016x}", rate.to_bits()),
            )
            .map_err(|e| format!("recording manifest: {e}"))?;
        }
    }
    // Merge journalled and fresh points back into canonical size order.
    let points: Vec<(u32, f64)> = sizes
        .iter()
        .map(|&bs| {
            let rate = done.get(&bs).copied().unwrap_or_else(|| {
                fresh
                    .iter()
                    .find(|&&(b, _)| b == bs)
                    .map(|&(_, r)| r)
                    .expect("every size is journalled or freshly swept")
            });
            (bs, rate)
        })
        .collect();
    for &(bs, rate) in &points {
        let replayed = if done.contains_key(&bs) && manifest.is_some() {
            "  (from manifest)"
        } else {
            ""
        };
        println!("  {bs:>5} B : {:5.1} % miss{replayed}", rate * 100.0);
    }
    if let Some(path) = flags.get("json") {
        let mut j = Json::object();
        j.set("command", "sweep")
            .set("mix", mix.name())
            .set("cache_mb", system.cache_mb)
            .set("accesses", n)
            .set(
                "points",
                Json::Arr(
                    points
                        .iter()
                        .map(|&(bs, rate)| {
                            let mut p = Json::object();
                            p.set("block_bytes", u64::from(bs)).set("miss_rate", rate);
                            p
                        })
                        .collect(),
                ),
            );
        write_json(path, &j)?;
        println!("wrote sweep JSON to {path}");
    }
    Ok(())
}

fn cmd_record(flags: &HashMap<String, String>) -> Result<(), String> {
    let program = flags.get("program").ok_or("record needs --program")?;
    let out = flags.get("out").ok_or("record needs --out")?;
    let n: usize = num(flags, "n", 100_000)?;
    let seed: u64 = num(flags, "seed", 7)?;
    let spec = spec_profile(program).ok_or_else(|| format!("unknown program {program:?}"))?;
    let accesses: Vec<_> = spec.trace(seed, 0).take(n).collect();
    let written = write_trace(out, &accesses).map_err(|e| e.to_string())?;
    println!("wrote {written} accesses of {program} to {out}");
    Ok(())
}

fn print_campaign(report: &CampaignReport) {
    println!("== fault campaign: {} on {} ==", report.scheme, report.mix);
    println!(
        "injections           : {} attempted, {} landed",
        report.schedule.len(),
        report.counts.total()
    );
    println!(
        "  by kind            : {} metadata ({} multi-bit), {} locator, {} predictor, {} dram",
        report.counts.metadata + report.counts.metadata_multi,
        report.counts.metadata_multi,
        report.counts.locator,
        report.counts.predictor,
        report.counts.dram
    );
    println!(
        "metadata ECC         : {}",
        if report.ecc { "armed" } else { "off" }
    );
    println!("detected, corrected  : {}", report.detected_corrected);
    println!("detected, uncorrected: {}", report.detected_uncorrected);
    println!("silent corruptions   : {}", report.silent_corruptions);
    if let Some(s) = &report.shadow {
        println!(
            "shadow checker       : {} impossible hits over {} checks, max drift {:.4}",
            s.faulted_violations, s.checks, s.max_drift
        );
    }
    match (report.clean_digest, report.faulted_digest) {
        (Some(c), Some(f)) if c == f => {
            println!("contents digest      : {c:#018x} (clean == faulted)");
        }
        (Some(c), Some(f)) => {
            println!("contents digest      : clean {c:#018x} != faulted {f:#018x}");
        }
        _ => {}
    }
    println!(
        "hit rate             : {:6.2} % clean, {:6.2} % faulted ({:+.2} pp)",
        report.clean.scheme.hit_rate() * 100.0,
        report.faulted.scheme.hit_rate() * 100.0,
        -report.hit_rate_degradation() * 100.0
    );
    println!(
        "avg access latency   : {:6.1} cycles clean, {:6.1} faulted ({:+.1})",
        report.clean.avg_latency(),
        report.faulted.avg_latency(),
        report.latency_degradation()
    );
    if let (Some(c), Some(f)) = (report.clean_antt, report.faulted_antt) {
        println!("ANTT                 : {c:6.3} clean, {f:6.3} faulted");
    }
}

fn cmd_inject(flags: &HashMap<String, String>) -> Result<(), String> {
    for snap in ["checkpoint", "checkpoint-every", "resume"] {
        if flags.contains_key(snap) {
            return Err(format!(
                "--{snap} is not available for inject (the clean and faulted \
                 legs run in lockstep and are not snapshotted mid-run); use \
                 --manifest DIR to resume a campaign at unit granularity"
            ));
        }
    }
    let mix_name = flags.get("mix").ok_or("inject needs --mix")?;
    let scheme_flag = flags.get("scheme").map_or("bimodal", String::as_str);
    // `--scheme all` fans the campaign across every organization in the
    // comparison set, producing one clean-vs-faulted degradation row per
    // scheme.
    let kinds = if scheme_flag.eq_ignore_ascii_case("all") {
        SchemeKind::comparison_set()
    } else {
        vec![parse_scheme(scheme_flag)?]
    };
    let (mix, base) = parse_mix(mix_name)?;
    let system = configured_system(base, flags)?;
    let rates = FaultRates {
        metadata: num(flags, "metadata-rate", 0.0)?,
        multi_bit: num(flags, "multi-bit", 0.2)?,
        locator: num(flags, "locator-rate", 0.0)?,
        predictor: num(flags, "predictor-rate", 0.0)?,
        dram: num(flags, "dram-rate", 0.0)?,
    };
    for (name, p) in [
        ("metadata-rate", rates.metadata),
        ("multi-bit", rates.multi_bit),
        ("locator-rate", rates.locator),
        ("predictor-rate", rates.predictor),
        ("dram-rate", rates.dram),
    ] {
        if !(0.0..=1.0).contains(&p) {
            return Err(format!("--{name} must be a probability in [0, 1]"));
        }
    }
    let watchdog = if flag_bool(flags, "no-watchdog")? {
        None
    } else {
        Some(WatchdogConfig {
            stall_cycles: num(flags, "watchdog", WatchdogConfig::default().stall_cycles)?,
            ..WatchdogConfig::default()
        })
    };
    let seeds: u64 = num(flags, "seeds", 1)?;
    if seeds == 0 {
        return Err("--seeds must be at least 1".to_owned());
    }
    let base_seed = num(flags, "seed", system.seed)?;
    let mix_name = mix.name().to_owned();
    let accesses: u64 = num(flags, "accesses", 30_000)?;
    let ecc = flag_bool(flags, "ecc")?;
    let shadow_every: u64 = num(flags, "shadow-every", 256)?;
    let antt = flag_bool(flags, "antt")?;
    let campaign_for = |kind: SchemeKind, seed: u64| {
        CampaignConfig::new(system.clone(), kind, mix.clone())
            .with_accesses(accesses)
            .with_seed(seed)
            .with_rates(rates)
            .with_ecc(ecc)
            .with_shadow_cadence(shadow_every)
            .with_watchdog(watchdog)
            .with_antt(antt)
    };

    if kinds.len() == 1 && seeds == 1 {
        for fanned in ["manifest", "retries", "retry-backoff-ms"] {
            if flags.contains_key(fanned) {
                return Err(format!(
                    "--{fanned} applies to fanned campaigns (--scheme all or \
                     --seeds N); a single unit re-runs from scratch"
                ));
            }
        }
        let mut obs = build_observer(flags)?;
        let report = campaign_for(kinds[0], base_seed)
            .run(&mut obs)
            .map_err(|e| e.to_string())?;
        print_campaign(&report);
        let sim_cycles = report
            .faulted
            .core_cycles
            .iter()
            .copied()
            .max()
            .unwrap_or(0);
        print_obs(&obs.summary(sim_cycles));
        if let Some(path) = flags.get("trace-out") {
            let counters = obs.bandwidth.counter_events();
            let ring = obs.trace.as_ref().expect("tracing was enabled");
            write_json(path, &ring.chrome_trace_with(&counters))?;
            println!("wrote event trace ({} events) to {path}", ring.len());
        }
        if let Some(path) = flags.get("json") {
            write_json(path, &report.to_json())?;
            println!("wrote campaign JSON to {path}");
        }
        let mut reg = MetricsRegistry::new();
        fill_campaign_metrics(&mut reg, "", &report);
        write_metrics(flags, &reg)?;
        return Ok(());
    }

    // Fan-out: each (scheme, seed) pair is an independent unit with its
    // own injector seed and a disabled observer, reduced in canonical
    // order (schemes in comparison order, then seeds ascending).
    // `--heartbeat` aggregates completion-granular progress into one
    // fleet line instead of being rejected.
    for heavy in ["trace-out", "exact-tails", "epoch", "sample-every"] {
        if flags.contains_key(heavy) {
            return Err(format!(
                "--{heavy} is not available when fanning over schemes or seeds"
            ));
        }
    }
    let jobs = parse_jobs(flags)?;
    let retries: u32 = num(flags, "retries", 3)?;
    if retries == 0 {
        return Err("--retries must be at least 1".to_owned());
    }
    let backoff_ms: u64 = num(flags, "retry-backoff-ms", 100)?;
    let policy = RetryPolicy {
        max_attempts: retries,
        base_backoff_ms: backoff_ms,
        max_backoff_ms: backoff_ms.saturating_mul(50).max(5_000),
        jitter_seed: base_seed,
    };
    let journal = parse_manifest(flags)?;
    if journal.is_some() && flags.contains_key("metrics-out") {
        return Err(
            "--metrics-out cannot be combined with --manifest (units replayed \
             from the journal have no metrics registry); re-run without --manifest"
                .to_owned(),
        );
    }
    // Split the campaign into units already journalled as complete
    // (replayed from their stored reports) and units still to run.
    let mut cached: HashMap<(SchemeKind, u64), Json> = HashMap::new();
    let mut units: Vec<(SchemeKind, u64)> = Vec::new();
    for &kind in &kinds {
        for k in 0..seeds {
            let seed = base_seed + k;
            let hit = journal.as_ref().and_then(|(dir, m)| {
                let unit = backend_scoped(&format!("{}/seed{seed}", kind.name()), system.backend);
                let file = format!(
                    "{}_seed{seed}.json",
                    metric_slug(&backend_scoped(kind.name(), system.backend))
                );
                m.digest(&unit)
                    .and_then(|d| load_cached_unit(dir, &file, d))
            });
            match hit {
                Some(j) => {
                    cached.insert((kind, seed), j);
                }
                None => units.push((kind, k)),
            }
        }
    }
    let manifest = journal.map(|(dir, m)| (dir, std::sync::Mutex::new(m)));
    let fleet = parse_heartbeat(flags)?
        .map(|interval| Arc::new(FleetProgress::new("campaigns", units.len(), interval)));
    let unit_list = units.clone();
    let runs = bimodal::exec::map_fallible(jobs, units, policy, |idx, &(kind, k)| {
        // Test hook: deterministically wreck one unit so the degradation
        // path (retries, failed slot, nonzero exit) can be exercised end
        // to end from the integration tests.
        if std::env::var("BIMODAL_TEST_PANIC_UNIT").ok().as_deref()
            == Some(idx.to_string().as_str())
        {
            panic!("injected test panic in unit {idx}");
        }
        let seed = base_seed + k;
        let mut obs = Observer::disabled();
        let run = campaign_for(kind, seed)
            .run(&mut obs)
            .map_err(|e| e.to_string());
        if let Some(fleet) = &fleet {
            fleet.unit_done(idx);
        }
        let r = run?;
        // Journal the finished unit right away, so a crash (or a later
        // unit exhausting its retries) never forfeits this one.
        if let Some((dir, m)) = &manifest {
            let journalled = (|| -> Result<(), String> {
                let j = r.to_json();
                let file = format!(
                    "{}_seed{seed}.json",
                    metric_slug(&backend_scoped(kind.name(), system.backend))
                );
                write_json(&dir.join(file).display().to_string(), &j)?;
                m.lock()
                    .expect("manifest lock")
                    .record(
                        &backend_scoped(&format!("{}/seed{seed}", kind.name()), system.backend),
                        &report_digest(&j),
                    )
                    .map_err(|e| e.to_string())
            })();
            if let Err(e) = journalled {
                eprintln!("warning: could not journal {}/seed{seed}: {e}", kind.name());
            }
        }
        Ok(r)
    });
    if let Some(fleet) = &fleet {
        fleet.finish();
    }
    println!(
        "{:>16} {:>10} {:>8} {:>9} {:>7} {:>7} {:>12} {:>12} {:>10}",
        "scheme",
        "seed",
        "landed",
        "corrected",
        "uncorr",
        "silent",
        "hit % clean",
        "hit % fault",
        "lat +cy"
    );
    let mut campaigns = Vec::new();
    let mut failed: Vec<Json> = Vec::new();
    let mut total_silent = 0u64;
    let mut reg = MetricsRegistry::new();
    let mut fresh = unit_list.iter().zip(runs);
    for &kind in &kinds {
        for k in 0..seeds {
            let seed = base_seed + k;
            if let Some(j) = cached.remove(&(kind, seed)) {
                let v = |path: &[&str]| json_num(&j, path).unwrap_or(f64::NAN);
                println!(
                    "{:>16} {seed:>10} {:>8} {:>9} {:>7} {:>7} {:>12.2} {:>12.2} {:>10.1}  (from manifest)",
                    kind.name(),
                    v(&["injected", "total"]) as u64,
                    v(&["detected_corrected"]) as u64,
                    v(&["detected_uncorrected"]) as u64,
                    v(&["silent_corruptions"]) as u64,
                    v(&["clean", "hit_rate"]) * 100.0,
                    v(&["faulted", "hit_rate"]) * 100.0,
                    v(&["degradation", "avg_latency"]),
                );
                total_silent += v(&["silent_corruptions"]) as u64;
                campaigns.push(j);
                continue;
            }
            let (unit, result) = fresh
                .next()
                .expect("every campaign unit is either cached or ran");
            debug_assert_eq!(*unit, (kind, k), "pool results stay in unit order");
            match result {
                UnitResult::Ok { value: r, attempts } => {
                    if attempts > 1 {
                        eprintln!(
                            "note: {}/seed{seed} succeeded on attempt {attempts}",
                            kind.name()
                        );
                    }
                    if flags.contains_key("metrics-out") {
                        let prefix = format!("{}.seed{seed}", metric_slug(kind.name()));
                        fill_campaign_metrics(&mut reg, &prefix, &r);
                    }
                    println!(
                        "{:>16} {seed:>10} {:>8} {:>9} {:>7} {:>7} {:>12.2} {:>12.2} {:>10.1}",
                        kind.name(),
                        r.counts.total(),
                        r.detected_corrected,
                        r.detected_uncorrected,
                        r.silent_corruptions,
                        r.clean.scheme.hit_rate() * 100.0,
                        r.faulted.scheme.hit_rate() * 100.0,
                        r.latency_degradation(),
                    );
                    total_silent += r.silent_corruptions;
                    campaigns.push(r.to_json());
                }
                UnitResult::Failed(f) => {
                    eprintln!(
                        "warning: {}/seed{seed} {} after {} attempt(s): {}",
                        kind.name(),
                        if f.panicked { "panicked" } else { "failed" },
                        f.attempts,
                        f.error
                    );
                    println!("{:>16} {seed:>10} {:>8}", kind.name(), "FAILED");
                    let mut fj = Json::object();
                    fj.set("unit", format!("{}/seed{seed}", kind.name()))
                        .set("scheme", kind.name())
                        .set("seed", seed)
                        .set("attempts", u64::from(f.attempts))
                        .set("error", f.error.as_str())
                        .set("panicked", f.panicked);
                    failed.push(fj);
                }
            }
        }
    }
    println!(
        "total silent corruptions across {} campaigns: {total_silent}",
        campaigns.len()
    );
    // Write the (possibly partial) results before deciding the exit
    // code: a degraded campaign still delivers everything it finished.
    if let Some(path) = flags.get("json") {
        let mut j = Json::object();
        j.set("command", "inject")
            .set("mix", mix_name.as_str())
            .set("base_seed", base_seed)
            .set("seeds", seeds)
            .set(
                "schemes",
                Json::Arr(kinds.iter().map(|k| Json::from(k.name())).collect()),
            )
            .set("campaigns", Json::Arr(campaigns))
            .set("failed", Json::Arr(failed.clone()));
        write_json(path, &j)?;
        println!("wrote campaign JSON to {path}");
    }
    write_metrics(flags, &reg)?;
    if !failed.is_empty() {
        return Err(format!(
            "{} campaign unit(s) failed after retries; completed units were \
             still reported (and journalled under --manifest)",
            failed.len()
        ));
    }
    Ok(())
}

/// Registers one campaign's headline counters plus its clean and faulted
/// run metrics, optionally under a `<prefix>.` namespace (fan-outs).
fn fill_campaign_metrics(reg: &mut MetricsRegistry, prefix: &str, r: &CampaignReport) {
    let key = |name: &str| {
        if prefix.is_empty() {
            name.to_owned()
        } else {
            format!("{prefix}.{name}")
        }
    };
    reg.counter(key("campaign.injections_landed"), r.counts.total())
        .counter(key("campaign.detected_corrected"), r.detected_corrected)
        .counter(key("campaign.detected_uncorrected"), r.detected_uncorrected)
        .counter(key("campaign.silent_corruptions"), r.silent_corruptions);
    for (leg, report) in [("clean", &r.clean), ("faulted", &r.faulted)] {
        let mut one = MetricsRegistry::new();
        report.fill_metrics(&mut one);
        merge_metrics_prefixed(reg, &key(leg), &one);
    }
}

fn cmd_bench(flags: &HashMap<String, String>) -> Result<(), String> {
    let window: usize = num(flags, "window", 5)?;
    if window == 0 {
        return Err("--window must be at least 1".to_owned());
    }
    let max_regress: f64 = num(flags, "max-regress", 25.0)?;
    if !(0.0..100.0).contains(&max_regress) {
        return Err("--max-regress must be a percentage in [0, 100)".to_owned());
    }
    if flag_bool(flags, "check-history")? {
        // Pure check mode: no benchmark run, just the trendline gate
        // over an existing history file.
        let path = flags
            .get("history")
            .ok_or("--check-history needs --history FILE")?;
        let text = std::fs::read_to_string(path).map_err(|e| format!("reading {path}: {e}"))?;
        let verdict = bimodal::selfbench::check_history(&text, window, max_regress)?;
        println!(
            "trendline check over {path}: newest point vs trailing median \
             of {} comparable point(s), budget {max_regress}%",
            verdict.baseline_points
        );
        for line in &verdict.lines {
            println!("  {line}");
        }
        if !verdict.passed() {
            return Err(format!(
                "bench trendline regression: {} fell more than {max_regress}% \
                 below the trailing median",
                verdict.regressions.join(", ")
            ));
        }
        println!("trendline gate passed");
        return Ok(());
    }
    let opts = bimodal::selfbench::BenchOptions {
        quick: flag_bool(flags, "quick")?,
        jobs: parse_jobs(flags)?,
        shards: parse_shards(flags)?,
        backend: match flags.get("backend") {
            Some(b) => BackendKind::parse(b)?,
            None => BackendKind::default(),
        },
    };
    // Parse the threshold before the (long) measurement, so a typo
    // fails fast instead of after the whole benchmark has run.
    let min_speedup = flags
        .get("min-speedup")
        .map(|m| {
            m.parse::<f64>()
                .map_err(|_| "--min-speedup must be a number".to_owned())
        })
        .transpose()?;
    eprintln!(
        "benchmarking (quick: {}, jobs: {}, host parallelism: {})...",
        opts.quick,
        opts.jobs,
        bimodal::exec::available_jobs()
    );
    let report = bimodal::selfbench::run(&opts);
    println!(
        "{:10} {:>6} {:>12} {:>14} {:>9}",
        "workload", "units", "serial (s)", "parallel (s)", "speedup"
    );
    for w in &report.workloads {
        println!(
            "{:10} {:>6} {:>12.3} {:>14.3} {:>8.2}x",
            w.name,
            w.units,
            w.serial_secs,
            w.parallel_secs,
            w.speedup()
        );
    }
    println!();
    println!(
        "{:18} {:>12} {:>10} {:>14}",
        "scheme", "accesses", "secs", "accesses/sec"
    );
    for s in &report.schemes {
        println!(
            "{:18} {:>12} {:>10.3} {:>14.0}",
            s.scheme, s.accesses, s.secs, s.accesses_per_sec
        );
    }
    if !report.sharded_schemes.is_empty() {
        println!();
        println!(
            "{:18} {:>12} {:>10} {:>14}   (--shards {})",
            "scheme", "accesses", "secs", "accesses/sec", report.shards
        );
        for s in &report.sharded_schemes {
            println!(
                "{:18} {:>12} {:>10.3} {:>14.0}",
                s.scheme, s.accesses, s.secs, s.accesses_per_sec
            );
        }
    }
    let path = flags
        .get("out")
        .cloned()
        .unwrap_or_else(|| format!("BENCH_{}.json", report.date));
    write_json(&path, &report.to_json())?;
    println!("wrote benchmark JSON to {path}");
    if let Some(hpath) = flags.get("history") {
        // Read-modify-write with an atomic rename: a crash mid-append
        // can no longer tear the newest history line.
        let mut text = match std::fs::read_to_string(hpath) {
            Ok(t) => t,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => String::new(),
            Err(e) => return Err(format!("reading {hpath}: {e}")),
        };
        if !text.is_empty() && !text.ends_with('\n') {
            text.push('\n');
        }
        text.push_str(&report.history_line());
        text.push('\n');
        bimodal::ckpt::atomic_write_str(std::path::Path::new(hpath), &text)
            .map_err(|e| format!("appending {hpath}: {e}"))?;
        println!("appended history point to {hpath}");
    }
    if let Some(min) = min_speedup {
        match bimodal::selfbench::speedup_gate(&report, min) {
            GateOutcome::Pass => println!(
                "compare speedup {:.2}x meets the required {min:.2}x",
                report.compare_speedup()
            ),
            GateOutcome::Warn(msg) => eprintln!("warning: {msg}"),
            GateOutcome::Fail(msg) => return Err(msg),
        }
    }
    Ok(())
}

/// Short column label for one traffic class in the breakdown tables.
fn class_label(class: bimodal::obs::TrafficClass) -> &'static str {
    use bimodal::obs::TrafficClass as T;
    match class {
        T::MetadataRead => "md.r",
        T::MetadataWrite => "md.w",
        T::TagProbe => "probe",
        T::DataFill => "fill",
        T::DataHit => "hit",
        T::Writeback => "wb",
        T::MainMemRefill => "refill",
        T::PredictorOverfetch => "spec",
        T::Scrub => "scrub",
        T::Refresh => "refr",
        T::Other => "other",
    }
}

/// Verifies the class-accounting invariant on one module's summary:
/// per-channel class cycles must sum exactly to that channel's busy
/// cycles (they are incremented by the same add, so a mismatch means
/// the attribution layer is broken, not the run).
fn check_class_sums(
    scheme: &str,
    module: &str,
    s: &bimodal::obs::BandwidthSummary,
) -> Result<(), String> {
    for (ch, c) in s.channels.iter().enumerate() {
        if c.busy.total_cycles() != c.busy_cycles {
            return Err(format!(
                "class accounting broken: {scheme} {module} channel {ch}: \
                 classes sum to {} busy cycles but the channel counted {}",
                c.busy.total_cycles(),
                c.busy_cycles
            ));
        }
    }
    Ok(())
}

/// One per-class share row (percent of bus busy cycles) for the table.
fn share_row(name: &str, s: &bimodal::obs::BandwidthSummary, elapsed: u64) -> String {
    use std::fmt::Write as _;
    let util = if elapsed == 0 || s.channels.is_empty() {
        0.0
    } else {
        s.total_busy_cycles() as f64 / (elapsed as f64 * s.channels.len() as f64)
    };
    let mut row = format!("{name:>16} {:>6.1}", util * 100.0);
    for class in bimodal::obs::TrafficClass::ALL {
        let _ = write!(row, " {:>6.1}", s.class_share(class) * 100.0);
    }
    row
}

fn cmd_bandwidth(flags: &HashMap<String, String>) -> Result<(), String> {
    let mix_name = flags.get("mix").ok_or("bandwidth needs --mix")?;
    let scheme_flag = flags.get("scheme").map_or("all", String::as_str);
    // `--scheme all` fans the breakdown across the five-organization
    // comparison set (the paper's Fig. 10 shape): one row per scheme.
    let kinds = if scheme_flag.eq_ignore_ascii_case("all") {
        SchemeKind::comparison_set()
    } else {
        vec![parse_scheme(scheme_flag)?]
    };
    let (mix, base) = parse_mix(mix_name)?;
    let system = configured_system(base, flags)?;
    let n = num(flags, "accesses", 30_000)?;
    let jobs = parse_jobs(flags)?;
    let sims = kinds
        .iter()
        .map(|&kind| build_simulation(system.clone(), kind, flags).map(|s| (kind, s)))
        .collect::<Result<Vec<_>, _>>()?;
    let runs = bimodal::exec::map(jobs, sims, |(kind, sim)| {
        (kind, sim.run_mix(&mix, n).map_err(|e| e.to_string()))
    });
    let mut reports = Vec::new();
    for (kind, run) in runs {
        let r = run?;
        check_class_sums(kind.name(), "cache", &r.bandwidth.cache)?;
        check_class_sums(kind.name(), "offchip", &r.bandwidth.offchip)?;
        reports.push((kind, r));
    }
    let header = {
        use std::fmt::Write as _;
        let mut h = format!("{:>16} {:>6}", "scheme", "util%");
        for class in bimodal::obs::TrafficClass::ALL {
            let _ = write!(h, " {:>6}", class_label(class));
        }
        h
    };
    println!(
        "== bandwidth breakdown on {} ({} accesses/core) ==",
        mix.name(),
        n
    );
    println!("-- stacked DRAM (cache) bus busy-cycle shares, % --");
    println!("{header}");
    for (kind, r) in &reports {
        println!(
            "{}",
            share_row(kind.name(), &r.bandwidth.cache, r.bandwidth.elapsed_cycles)
        );
    }
    println!("-- off-chip DRAM bus busy-cycle shares, % --");
    println!("{header}");
    for (kind, r) in &reports {
        println!(
            "{}",
            share_row(
                kind.name(),
                &r.bandwidth.offchip,
                r.bandwidth.elapsed_cycles
            )
        );
    }
    println!("-- deferred background-op queue --");
    for (kind, r) in &reports {
        let q = &r.bandwidth.deferred_queue;
        println!(
            "{:>16} high-water {:>4}, time-weighted mean {:.3}",
            kind.name(),
            q.high_water,
            q.time_weighted_mean()
        );
    }
    println!(
        "class sums verified: per-class busy cycles match channel totals \
         on {} scheme(s), both modules",
        reports.len()
    );
    if let Some(path) = flags.get("json") {
        let mut j = Json::object();
        j.set("command", "bandwidth")
            .set("mix", mix.name())
            .set("accesses_per_core", n)
            .set(
                "schemes",
                Json::Arr(reports.iter().map(|(k, _)| Json::from(k.name())).collect()),
            )
            .set(
                "reports",
                Json::Arr(reports.iter().map(|(_, r)| r.to_json()).collect()),
            );
        write_json(path, &j)?;
        println!("wrote bandwidth JSON to {path}");
    }
    Ok(())
}

/// Short column labels for the anatomy components, in
/// [`bimodal::obs::Component::ALL`] order.
const COMP_LABELS: [&str; bimodal::obs::COMPONENT_COUNT] = [
    "queue", "bankc", "tagpr", "locat", "burst", "offch", "defer", "other",
];

/// Header of an anatomy table: one column per component plus the mean.
fn anatomy_header(first: &str) -> String {
    use std::fmt::Write as _;
    let mut h = format!("{first:>16} {:>9}", "count");
    for label in COMP_LABELS {
        let _ = write!(h, " {label:>7}");
    }
    let _ = write!(h, " {:>8}", "avg");
    h
}

/// One anatomy table row: mean cycles per access in each component.
fn anatomy_row(name: &str, p: &bimodal::obs::PopSummary) -> String {
    use std::fmt::Write as _;
    let mut row = format!("{name:>16} {:>9}", p.count);
    for i in 0..bimodal::obs::COMPONENT_COUNT {
        let _ = write!(row, " {:>7.1}", p.mean_component(i));
    }
    let _ = write!(row, " {:>8.1}", p.mean_latency());
    row
}

/// Prints a run report's anatomy section as per-population tables.
fn print_anatomy(a: &bimodal::obs::AnatomySummary) {
    println!("-- latency anatomy: mean cycles per access by component --");
    println!("{}", anatomy_header("population"));
    for p in &a.populations {
        if p.count > 0 {
            println!("{}", anatomy_row(p.name, p));
        }
    }
    if a.fused_saved_cycles > 0 {
        println!(
            "fused tag+data bursts saved an estimated {} cycles",
            a.fused_saved_cycles
        );
    }
    for b in &a.background {
        println!(
            "background {:>14}: {} ops, {} cycles",
            b.name,
            b.ops,
            b.cycles.iter().sum::<u64>()
        );
    }
}

/// Checks the structural invariant on a report's anatomy section:
/// every population's component cycles sum exactly to its total
/// measured latency.
fn check_anatomy_sums(scheme: &str, a: &bimodal::obs::AnatomySummary) -> Result<(), String> {
    for p in &a.populations {
        let sum: u64 = p.components.iter().map(|c| c.cycles).sum();
        if sum != p.total_latency {
            return Err(format!(
                "{scheme}: anatomy components of {} sum to {} cycles but \
                 total latency is {}",
                p.name, sum, p.total_latency
            ));
        }
    }
    Ok(())
}

fn cmd_latency(flags: &HashMap<String, String>) -> Result<(), String> {
    let mix_name = flags.get("mix").ok_or("latency needs --mix")?;
    let scheme_flag = flags.get("scheme").map_or("all", String::as_str);
    let kinds = if scheme_flag.eq_ignore_ascii_case("all") {
        SchemeKind::comparison_set()
    } else {
        vec![parse_scheme(scheme_flag)?]
    };
    let (mix, base) = parse_mix(mix_name)?;
    let system = configured_system(base, flags)?;
    let n = num(flags, "accesses", 30_000)?;
    let jobs = parse_jobs(flags)?;
    let sims = kinds
        .iter()
        .map(|&kind| build_simulation(system.clone(), kind, flags).map(|s| (kind, s)))
        .collect::<Result<Vec<_>, _>>()?;
    let runs = bimodal::exec::map(jobs, sims, |(kind, sim)| {
        let mut obs = Observer::enabled(ObserverConfig::default().with_anatomy());
        (
            kind,
            sim.run_mix_observed(&mix, n, &mut obs)
                .map_err(|e| e.to_string()),
        )
    });
    let mut reports = Vec::new();
    for (kind, run) in runs {
        let r = run?;
        let a = r
            .anatomy
            .as_ref()
            .ok_or_else(|| format!("{}: run produced no anatomy section", kind.name()))?;
        check_anatomy_sums(kind.name(), a)?;
        reports.push((kind, r));
    }
    println!(
        "== latency anatomy on {} ({} accesses/core) ==",
        mix.name(),
        n
    );
    // One table per demand population that any scheme saw: a row per
    // scheme of mean cycles spent in each component.
    let pop_count = reports.first().map_or(0, |(_, r)| {
        r.anatomy.as_ref().map_or(0, |a| a.populations.len())
    });
    for pi in 0..pop_count {
        if !reports.iter().any(|(_, r)| {
            r.anatomy
                .as_ref()
                .is_some_and(|a| a.populations[pi].count > 0)
        }) {
            continue;
        }
        let name = reports[0].1.anatomy.as_ref().expect("checked").populations[pi].name;
        println!("-- {name}: mean cycles per access by component --");
        println!("{}", anatomy_header("scheme"));
        for (kind, r) in &reports {
            let p = &r.anatomy.as_ref().expect("checked").populations[pi];
            println!("{}", anatomy_row(kind.name(), p));
        }
    }
    for (kind, r) in &reports {
        let a = r.anatomy.as_ref().expect("checked");
        if a.fused_saved_cycles > 0 {
            println!(
                "{:>16}: fused tag+data bursts saved an estimated {} cycles",
                kind.name(),
                a.fused_saved_cycles
            );
        }
    }
    println!(
        "component sums verified: anatomy components add up to measured \
         latency on {} scheme(s)",
        reports.len()
    );
    if let Some(path) = flags.get("json") {
        let mut j = Json::object();
        j.set("command", "latency")
            .set("mix", mix.name())
            .set("accesses_per_core", n)
            .set(
                "schemes",
                Json::Arr(reports.iter().map(|(k, _)| Json::from(k.name())).collect()),
            )
            .set(
                "reports",
                Json::Arr(reports.iter().map(|(_, r)| r.to_json()).collect()),
            );
        write_json(path, &j)?;
        println!("wrote latency anatomy JSON to {path}");
    }
    Ok(())
}

/// Parses `--addr X` (hex with `0x` prefix, or decimal).
fn parse_addr(flags: &HashMap<String, String>) -> Result<u64, String> {
    let raw = flags.get("addr").ok_or("explain needs --addr")?;
    let parsed = if let Some(hex) = raw.strip_prefix("0x").or_else(|| raw.strip_prefix("0X")) {
        u64::from_str_radix(hex, 16)
    } else {
        raw.parse()
    };
    parsed.map_err(|_| format!("--addr must be a decimal or 0x-hex address, got {raw:?}"))
}

fn cmd_explain(flags: &HashMap<String, String>) -> Result<(), String> {
    let mix_name = flags.get("mix").ok_or("explain needs --mix")?;
    let scheme = parse_scheme(flags.get("scheme").ok_or("explain needs --scheme")?)?;
    let addr = parse_addr(flags)?;
    let (mix, base) = parse_mix(mix_name)?;
    let system = configured_system(base, flags)?;
    let n = num(flags, "accesses", 30_000)?;
    let mut obs = Observer::enabled(ObserverConfig::default().with_journey_addr(addr));
    let report = build_simulation(system, scheme, flags)?
        .run_mix_observed(&mix, n, &mut obs)
        .map_err(|e| e.to_string())?;
    let jl = obs.journeys.as_ref().expect("journey filter was enabled");
    println!(
        "== journeys for {addr:#x}: {} on {} ({} accesses/core) ==",
        scheme.name(),
        mix.name(),
        n
    );
    if jl.entries().is_empty() {
        println!("address {addr:#x} was never accessed during the run");
    }
    for j in jl.entries() {
        println!(
            "seq {:>8} core {} {} issue {:>10} complete {:>10} latency {:>6} {}",
            j.seq,
            j.core,
            if j.is_write { "write" } else { "read " },
            j.at,
            j.at + j.latency,
            j.latency,
            if j.hit { "hit" } else { "miss" },
        );
        let parts: Vec<String> = bimodal::obs::Component::ALL
            .iter()
            .zip(&j.comps)
            .filter(|(_, &c)| c > 0)
            .map(|(comp, &c)| format!("{} {c}", comp.name()))
            .collect();
        println!(
            "         {}",
            if parts.is_empty() {
                "(zero-latency)".to_owned()
            } else {
                parts.join(", ")
            }
        );
    }
    if jl.dropped() > 0 {
        println!("({} further journey(s) dropped at capacity)", jl.dropped());
    }
    let a = report.anatomy.as_ref().expect("journeys imply anatomy");
    check_anatomy_sums(scheme.name(), a)?;
    Ok(())
}

/// Reads one number at `path` inside `j`.
fn json_num(j: &Json, path: &[&str]) -> Option<f64> {
    let mut cur = j;
    for p in path {
        cur = cur.get(p)?;
    }
    cur.as_f64()
}

/// Relative drift between two scalars, in percent of the larger
/// magnitude (0 when both are 0, so identical runs diff to zero).
fn rel_drift_pct(a: f64, b: f64) -> f64 {
    let denom = a.abs().max(b.abs());
    if denom == 0.0 {
        0.0
    } else {
        (a - b).abs() / denom * 100.0
    }
}

/// Per-class cache bus busy-cycle shares from a run report's
/// `bandwidth.cache.by_class` section, as `(class, share)` pairs.
fn cache_class_shares(j: &Json) -> Vec<(String, f64)> {
    let Some(Json::Obj(pairs)) = j
        .get("bandwidth")
        .and_then(|b| b.get("cache"))
        .and_then(|c| c.get("by_class"))
    else {
        return Vec::new();
    };
    let cycles: Vec<(String, f64)> = pairs
        .iter()
        .filter_map(|(name, v)| Some((name.clone(), v.get("cycles")?.as_f64()?)))
        .collect();
    let total: f64 = cycles.iter().map(|(_, c)| c).sum();
    cycles
        .into_iter()
        .map(|(name, c)| (name, if total == 0.0 { 0.0 } else { c / total }))
        .collect()
}

/// How `diff` failed, mapped to distinct exit codes in `main`: drift
/// between readable reports exits 1, unreadable or malformed input
/// exits 2, so CI can tell "the experiment regressed" from "the golden
/// file is broken".
enum DiffError {
    /// The inputs could not be read, parsed, or compared (exit code 2).
    Input(String),
    /// The reports differ beyond the gate (exit code 1).
    Drift(String),
}

/// Drops the sections that legitimately differ between byte-identical
/// runs (wall-clock timings under `obs.wall`, the host-time span
/// profile) before an `--exact` comparison.
fn strip_volatile(j: &mut Json) {
    if let Json::Obj(entries) = j {
        entries.retain(|(k, _)| k != "profile");
        for (k, v) in entries.iter_mut() {
            if k == "obs" {
                if let Json::Obj(obs) = v {
                    obs.retain(|(k, _)| k != "wall");
                }
            }
        }
    }
}

/// Collects the paths where two JSON trees differ (up to `limit`, so a
/// wholly different pair of files prints a digest, not a flood).
fn json_diff_paths(a: &Json, b: &Json, path: &str, out: &mut Vec<String>, limit: usize) {
    if out.len() >= limit {
        return;
    }
    match (a, b) {
        (Json::Obj(xa), Json::Obj(xb)) => {
            let mut keys: Vec<&str> = xa.iter().map(|(k, _)| k.as_str()).collect();
            let extra: Vec<&str> = xb
                .iter()
                .map(|(k, _)| k.as_str())
                .filter(|k| !keys.contains(k))
                .collect();
            keys.extend(extra);
            for k in keys {
                let sub = if path.is_empty() {
                    k.to_owned()
                } else {
                    format!("{path}.{k}")
                };
                let va = xa.iter().find(|(n, _)| n == k).map(|(_, v)| v);
                let vb = xb.iter().find(|(n, _)| n == k).map(|(_, v)| v);
                match (va, vb) {
                    (Some(va), Some(vb)) => json_diff_paths(va, vb, &sub, out, limit),
                    _ => {
                        if out.len() < limit {
                            out.push(format!("{sub} (present in only one report)"));
                        }
                    }
                }
            }
        }
        (Json::Arr(xa), Json::Arr(xb)) if xa.len() == xb.len() => {
            for (i, (va, vb)) in xa.iter().zip(xb).enumerate() {
                json_diff_paths(va, vb, &format!("{path}[{i}]"), out, limit);
            }
        }
        _ => {
            if a != b && out.len() < limit {
                out.push(path.to_owned());
            }
        }
    }
}

fn cmd_diff(args: &[String]) -> Result<(), DiffError> {
    // `diff` takes two positional report paths before/between its
    // flags; a flag without `=` consumes the next argument as its value.
    let mut paths: Vec<String> = Vec::new();
    let mut flag_args: Vec<String> = Vec::new();
    let mut i = 0;
    while i < args.len() {
        if args[i].starts_with("--") {
            flag_args.push(args[i].clone());
            if !args[i].contains('=') && !args[i].trim_start_matches("--").eq("exact") {
                if let Some(v) = args.get(i + 1) {
                    flag_args.push(v.clone());
                    i += 1;
                }
            }
        } else {
            paths.push(args[i].clone());
        }
        i += 1;
    }
    let flags = parse_flags(&flag_args, &["threshold", "anatomy-threshold", "exact"])
        .map_err(DiffError::Input)?;
    let [a_path, b_path] = paths.as_slice() else {
        return Err(DiffError::Input(format!(
            "diff needs exactly two report files, got {}",
            paths.len()
        )));
    };
    let exact = flag_bool(&flags, "exact").map_err(DiffError::Input)?;
    if exact && (flags.contains_key("threshold") || flags.contains_key("anatomy-threshold")) {
        return Err(DiffError::Input(
            "--exact and --threshold/--anatomy-threshold are mutually exclusive".to_owned(),
        ));
    }
    let anatomy_threshold: Option<f64> = match flags.get("anatomy-threshold") {
        Some(v) => {
            let cy: f64 = v
                .parse()
                .map_err(|_| DiffError::Input("--anatomy-threshold must be cycles".to_owned()))?;
            if cy < 0.0 {
                return Err(DiffError::Input(
                    "--anatomy-threshold must be non-negative".to_owned(),
                ));
            }
            Some(cy)
        }
        None => None,
    };
    let threshold: f64 = num(&flags, "threshold", 2.0).map_err(DiffError::Input)?;
    if threshold < 0.0 {
        return Err(DiffError::Input(
            "--threshold must be non-negative".to_owned(),
        ));
    }
    let load = |path: &str| -> Result<Json, DiffError> {
        let text = std::fs::read_to_string(path)
            .map_err(|e| DiffError::Input(format!("reading {path}: {e}")))?;
        let j = Json::parse(&text).map_err(|e| DiffError::Input(format!("parsing {path}: {e}")))?;
        if j.get("reports").is_some() || j.get("campaigns").is_some() {
            return Err(DiffError::Input(format!(
                "{path} is a fanned multi-run file; diff compares single-run \
                 reports (write one with `bimodal run --json` or pick one \
                 entry out of the `reports` array)"
            )));
        }
        Ok(j)
    };
    let mut a = load(a_path)?;
    let mut b = load(b_path)?;

    if exact {
        // Byte-exactness gate for checkpoint/resume validation: every
        // field must match except wall-clock and the span profile.
        strip_volatile(&mut a);
        strip_volatile(&mut b);
        if a == b {
            println!("reports are identical (ignoring wall clock and span profile)");
            return Ok(());
        }
        let mut diffs = Vec::new();
        json_diff_paths(&a, &b, "", &mut diffs, 16);
        for d in &diffs {
            println!("  differs: {d}");
        }
        return Err(DiffError::Drift(format!(
            "reports differ at {} path(s) between {a_path} and {b_path}",
            diffs.len()
        )));
    }

    // Scalar metrics: relative drift in percent.
    let scalars: &[(&str, &[&str])] = &[
        ("avg_latency", &["avg_latency"]),
        ("mean_core_cycles", &["mean_core_cycles"]),
        ("hit_rate", &["stats", "hit_rate"]),
        ("offchip_bytes", &["offchip_bytes"]),
        ("read p50", &["obs", "latency", "read", "p50"]),
        ("read p99", &["obs", "latency", "read", "p99"]),
    ];
    let mut rows: Vec<(String, f64, f64, f64)> = Vec::new();
    for (label, path) in scalars {
        match (json_num(&a, path), json_num(&b, path)) {
            (Some(x), Some(y)) => rows.push(((*label).to_owned(), x, y, rel_drift_pct(x, y))),
            // Percentiles are absent in unobserved reports; skip quietly.
            _ if path.first() == Some(&"obs") => {}
            _ => {
                return Err(DiffError::Input(format!(
                    "metric {label:?} missing from one of the reports"
                )))
            }
        }
    }
    // Per-class bandwidth shares: absolute drift in percentage points,
    // gated by the same threshold.
    let (sa, sb) = (cache_class_shares(&a), cache_class_shares(&b));
    let mut classes: Vec<String> = sa.iter().chain(sb.iter()).map(|(n, _)| n.clone()).collect();
    classes.sort();
    classes.dedup();
    let share = |shares: &[(String, f64)], name: &str| {
        shares
            .iter()
            .find(|(n, _)| n == name)
            .map_or(0.0, |(_, s)| *s)
    };
    for name in classes {
        let (x, y) = (share(&sa, &name), share(&sb, &name));
        rows.push((format!("cache share {name}"), x, y, (x - y).abs() * 100.0));
    }

    println!(
        "{:>24} {:>14} {:>14} {:>9}",
        "metric", a_path, b_path, "drift%"
    );
    let mut over = 0usize;
    for (label, x, y, drift) in &rows {
        let mark = if *drift > threshold { " <-- drift" } else { "" };
        if *drift > threshold {
            over += 1;
        }
        println!("{label:>24} {x:>14.4} {y:>14.4} {drift:>9.3}{mark}");
    }

    // Anatomy drift: per-population per-component mean cycles, gated by
    // an absolute cycle threshold (relative drift would over-trigger on
    // tiny components).
    let mut anat_over = 0usize;
    if let Some(cy_threshold) = anatomy_threshold {
        let (ma, mb) = (anatomy_means(&a), anatomy_means(&b));
        let (Some(ma), Some(mb)) = (ma, mb) else {
            return Err(DiffError::Input(
                "--anatomy-threshold needs an `anatomy` section in both reports \
                 (write them with `bimodal run --anatomy --json`)"
                    .to_owned(),
            ));
        };
        let mut labels: Vec<&String> = ma.iter().chain(mb.iter()).map(|(l, _)| l).collect();
        labels.sort();
        labels.dedup();
        let get =
            |m: &[(String, f64)], l: &str| m.iter().find(|(n, _)| n == l).map_or(0.0, |(_, v)| *v);
        println!(
            "{:>32} {:>14} {:>14} {:>9}",
            "anatomy mean cycles", a_path, b_path, "|dcy|"
        );
        for label in labels {
            let (x, y) = (get(&ma, label), get(&mb, label));
            let d = (x - y).abs();
            let mark = if d > cy_threshold { " <-- drift" } else { "" };
            if d > cy_threshold {
                anat_over += 1;
            }
            println!("{label:>32} {x:>14.2} {y:>14.2} {d:>9.2}{mark}");
        }
        if anat_over == 0 {
            println!("no anatomy drift above {cy_threshold} cycles");
        }
    }

    if over + anat_over > 0 {
        return Err(DiffError::Drift(format!(
            "{over} metric(s) over {threshold}% and {anat_over} anatomy \
             component(s) over the absolute cycle threshold between \
             {a_path} and {b_path}"
        )));
    }
    println!("no drift above {threshold}%");
    Ok(())
}

/// Per-population per-component mean cycles from a report's `anatomy`
/// section, labelled `population.component`. `None` when the report has
/// no anatomy section; populations with zero accesses are skipped.
fn anatomy_means(j: &Json) -> Option<Vec<(String, f64)>> {
    let pops = j.get("anatomy")?.get("populations")?;
    let Json::Obj(pairs) = pops else { return None };
    let mut out = Vec::new();
    for (pop, body) in pairs {
        let count = body.get("count").and_then(Json::as_f64).unwrap_or(0.0);
        if count == 0.0 {
            continue;
        }
        if let Some(Json::Obj(comps)) = body.get("components") {
            for (comp, c) in comps {
                let cycles = c.get("cycles").and_then(Json::as_f64).unwrap_or(0.0);
                out.push((format!("{pop}.{comp}"), cycles / count));
            }
        }
    }
    Some(out)
}

/// Flags each command accepts; anything else is rejected up front.
fn allowed_flags(command: &str) -> &'static [&'static str] {
    const RUN: &[&str] = &[
        "mix",
        "backend",
        "scheme",
        "accesses",
        "cache-mb",
        "seed",
        "warmup",
        "mlp",
        "prefetch",
        "shards",
        "json",
        "trace-out",
        "stream",
        "sample-every",
        "epoch",
        "heartbeat",
        "exact-tails",
        "profile",
        "metrics-out",
        "metrics-format",
        "anatomy",
        "journeys",
        "checkpoint",
        "checkpoint-every",
        "resume",
    ];
    const INJECT: &[&str] = &[
        "mix",
        "backend",
        "scheme",
        "accesses",
        "cache-mb",
        "seed",
        "seeds",
        "jobs",
        "warmup",
        "mlp",
        "metadata-rate",
        "multi-bit",
        "locator-rate",
        "predictor-rate",
        "dram-rate",
        "ecc",
        "antt",
        "shadow-every",
        "watchdog",
        "no-watchdog",
        "json",
        "trace-out",
        "sample-every",
        "epoch",
        "heartbeat",
        "exact-tails",
        "metrics-out",
        "metrics-format",
        "manifest",
        "retries",
        "retry-backoff-ms",
        "checkpoint",
        "checkpoint-every",
        "resume",
    ];
    const COMPARE: &[&str] = &[
        "mix",
        "backend",
        "accesses",
        "cache-mb",
        "seed",
        "warmup",
        "mlp",
        "prefetch",
        "shards",
        "jobs",
        "json",
        "heartbeat",
        "metrics-out",
        "metrics-format",
        "manifest",
        "checkpoint",
        "checkpoint-every",
        "resume",
    ];
    const ANTT: &[&str] = &[
        "mix",
        "backend",
        "scheme",
        "accesses",
        "cache-mb",
        "seed",
        "warmup",
        "mlp",
        "prefetch",
        "jobs",
        "json",
        "heartbeat",
    ];
    const SWEEP: &[&str] = &[
        "mix",
        "backend",
        "accesses",
        "cache-mb",
        "seed",
        "jobs",
        "json",
        "heartbeat",
        "manifest",
    ];
    const RECORD: &[&str] = &["program", "out", "n", "seed"];
    const BENCH: &[&str] = &[
        "quick",
        "backend",
        "jobs",
        "shards",
        "min-speedup",
        "out",
        "history",
        "check-history",
        "window",
        "max-regress",
    ];
    const BANDWIDTH: &[&str] = &[
        "mix", "backend", "scheme", "accesses", "cache-mb", "seed", "warmup", "mlp", "prefetch",
        "jobs", "json",
    ];
    const LATENCY: &[&str] = &[
        "mix", "backend", "scheme", "accesses", "cache-mb", "seed", "warmup", "mlp", "prefetch",
        "jobs", "json",
    ];
    const EXPLAIN: &[&str] = &[
        "mix", "backend", "scheme", "addr", "accesses", "cache-mb", "seed", "warmup", "mlp",
        "prefetch",
    ];
    match command {
        "run" => RUN,
        "compare" => COMPARE,
        "antt" => ANTT,
        "sweep" => SWEEP,
        "record" => RECORD,
        "inject" => INJECT,
        "bench" => BENCH,
        "bandwidth" => BANDWIDTH,
        "latency" => LATENCY,
        "explain" => EXPLAIN,
        _ => &[],
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(command) = args.first() else {
        eprintln!("{}", usage());
        return ExitCode::FAILURE;
    };
    // `diff` takes positional file arguments, which the --flag parser
    // would reject; hand it the raw tail instead.
    if command == "diff" {
        // Distinct exit codes so CI can tell a real regression (1) from
        // a broken or missing golden file (2).
        return match cmd_diff(&args[1..]) {
            Ok(()) => ExitCode::SUCCESS,
            Err(DiffError::Drift(e)) => {
                eprintln!("error: {e}");
                ExitCode::from(1)
            }
            Err(DiffError::Input(e)) => {
                eprintln!("error: {e}");
                ExitCode::from(2)
            }
        };
    }
    let flags = match parse_flags(&args[1..], allowed_flags(command)) {
        Ok(f) => f,
        Err(e) => {
            eprintln!("error: {e}\n\n{}", usage());
            return ExitCode::FAILURE;
        }
    };
    let result = match command.as_str() {
        "list" => {
            cmd_list();
            Ok(())
        }
        "run" => cmd_run(&flags),
        "compare" => cmd_compare(&flags),
        "antt" => cmd_antt(&flags),
        "sweep" => cmd_sweep(&flags),
        "record" => cmd_record(&flags),
        "inject" => cmd_inject(&flags),
        "bench" => cmd_bench(&flags),
        "bandwidth" => cmd_bandwidth(&flags),
        "latency" => cmd_latency(&flags),
        "explain" => cmd_explain(&flags),
        "help" | "--help" | "-h" => {
            println!("{}", usage());
            Ok(())
        }
        other => Err(format!("unknown command {other:?}")),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}\n\n{}", usage());
            ExitCode::FAILURE
        }
    }
}
