//! # Bi-Modal DRAM Cache — facade crate
//!
//! A from-scratch Rust reproduction of *"Bi-Modal DRAM Cache: Improving Hit
//! Rate, Hit Latency and Bandwidth"* (Gulur, Mehendale, Manikantan,
//! Govindarajan — MICRO 2014).
//!
//! This crate re-exports the whole workspace behind one dependency:
//!
//! * [`dram`] — the stacked / off-chip DRAM timing substrate,
//! * [`cache`] — the Bi-Modal cache organization itself (way locator,
//!   block size predictor, bi-modal sets, metadata layout),
//! * [`baselines`] — AlloyCache, Loh-Hill, ATCache and Footprint Cache,
//! * [`workloads`] — synthetic SPEC-like trace generators and the Q/E/S
//!   multiprogrammed mixes,
//! * [`sim`] — the trace-driven multi-core simulation engine, prefetcher,
//!   energy model and ANTT metrics,
//! * [`obs`] — the observability layer: latency histograms, epoch time
//!   series, event tracing, JSON export, wall-clock profiling,
//! * [`faults`] — seeded fault-injection campaigns, the shadow-model
//!   invariant checker, and resilience reporting,
//! * [`exec`] — the dependency-free bounded worker pool that fans
//!   independent runs across threads with bit-identical results, with a
//!   fault-tolerant retrying variant and resumable-campaign manifests,
//! * [`ckpt`] — the versioned, checksummed snapshot container behind
//!   engine checkpoint/resume and every atomic file write,
//! * [`prng`] — the dependency-free xoshiro256++ PRNG the workload
//!   generators draw from.
//!
//! # Quickstart
//!
//! ```
//! use bimodal::prelude::*;
//!
//! // A small 4-core system with a 32 MB Bi-Modal DRAM cache.
//! let system = SystemConfig::quad_core().with_cache_mb(32);
//! let mix = WorkloadMix::quad("Q1").expect("Q1 is a known mix");
//! let report = Simulation::new(system, SchemeKind::BiModal)
//!     .run_mix(&mix, 20_000)
//!     .expect("simulation runs");
//! assert!(report.dram_cache_accesses() > 0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use bimodal_baselines as baselines;
pub use bimodal_ckpt as ckpt;
pub use bimodal_core as cache;
pub use bimodal_dram as dram;
pub use bimodal_exec as exec;
pub use bimodal_faults as faults;
pub use bimodal_obs as obs;
pub use bimodal_prng as prng;
pub use bimodal_sim as sim;
pub use bimodal_workloads as workloads;

pub mod selfbench;

/// Convenient glob-import surface for examples and quick experiments.
pub mod prelude {
    pub use bimodal_core::{BiModalCache, BiModalConfig, BlockSize, CacheGeometry};
    pub use bimodal_dram::{BackendKind, DramConfig, DramModule, MemBackend, MemorySystem};
    pub use bimodal_obs::{Json, Observer, ObserverConfig};
    pub use bimodal_sim::{SchemeKind, Simulation, SystemConfig};
    pub use bimodal_workloads::{WorkloadMix, WorkloadSpec};
}
