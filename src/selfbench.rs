//! Self-benchmarking harness behind `bimodal bench`.
//!
//! Times representative serial-vs-parallel workloads (the multi-scheme
//! compare, the functional block-size sweep, and the ANTT standalone
//! fan-out) and reports per-scheme simulation throughput, so every PR
//! has a perf trajectory to regress against. The numbers go into
//! `BENCH_<date>.json` (see [`BenchReport::to_json`] for the schema).
//!
//! Wall-clock numbers are honest about the host: `host_parallelism`
//! records how many cores the measurement actually had, so a ~1.0×
//! "speedup" on a single-core box reads as the hardware limit it is,
//! not a regression.

use std::time::Instant;

use bimodal_obs::Json;
use bimodal_sim::{sweep, SchemeKind, Simulation, SystemConfig};
use bimodal_workloads::WorkloadMix;

/// What `bimodal bench` should run.
#[derive(Debug, Clone)]
pub struct BenchOptions {
    /// Shrink every workload (CI smoke mode).
    pub quick: bool,
    /// Worker threads for the parallel passes.
    pub jobs: usize,
}

/// One serial-vs-parallel timing of a fanned command.
#[derive(Debug, Clone)]
pub struct WorkloadTiming {
    /// Command-like name (`compare`, `sweep`, `antt`).
    pub name: &'static str,
    /// Independent units the command fans out.
    pub units: usize,
    /// Wall-clock seconds with `--jobs 1`.
    pub serial_secs: f64,
    /// Wall-clock seconds with `--jobs N`.
    pub parallel_secs: f64,
}

impl WorkloadTiming {
    /// Serial time over parallel time (1.0 = no gain).
    #[must_use]
    pub fn speedup(&self) -> f64 {
        if self.parallel_secs > 0.0 {
            self.serial_secs / self.parallel_secs
        } else {
            1.0
        }
    }
}

/// Simulation throughput of one scheme on the compare workload.
#[derive(Debug, Clone)]
pub struct SchemeRate {
    /// Scheme name as reported by the scheme itself.
    pub scheme: String,
    /// DRAM-cache accesses the timed run performed.
    pub accesses: u64,
    /// Wall-clock seconds of that run.
    pub secs: f64,
    /// `accesses / secs`.
    pub accesses_per_sec: f64,
}

/// Everything `bimodal bench` measured.
#[derive(Debug, Clone)]
pub struct BenchReport {
    /// UTC date the benchmark ran (`YYYY-MM-DD`).
    pub date: String,
    /// Cores the host actually offered the measurement.
    pub host_parallelism: usize,
    /// Worker threads the parallel passes used.
    pub jobs: usize,
    /// Whether the quick (CI smoke) sizes were used.
    pub quick: bool,
    /// Serial-vs-parallel timings per command.
    pub workloads: Vec<WorkloadTiming>,
    /// Per-scheme simulation throughput on the compare workload.
    pub schemes: Vec<SchemeRate>,
}

impl BenchReport {
    /// Speedup of the compare workload (the CI assertion target).
    #[must_use]
    pub fn compare_speedup(&self) -> f64 {
        self.workloads
            .iter()
            .find(|w| w.name == "compare")
            .map_or(1.0, WorkloadTiming::speedup)
    }

    /// The `BENCH_*.json` document:
    ///
    /// ```json
    /// {
    ///   "schema": "bimodal-bench-v1",
    ///   "date": "2026-08-05",
    ///   "host_parallelism": 4, "jobs": 4, "quick": false,
    ///   "workloads": [{"name": "compare", "units": 9,
    ///                  "serial_secs": 1.2, "parallel_secs": 0.4,
    ///                  "speedup": 3.0}, ...],
    ///   "schemes": [{"scheme": "BiModal", "accesses": 123456,
    ///                "secs": 0.21, "accesses_per_sec": 587885.7}, ...]
    /// }
    /// ```
    #[must_use]
    pub fn to_json(&self) -> Json {
        let mut j = Json::object();
        j.set("schema", "bimodal-bench-v1")
            .set("date", self.date.as_str())
            .set("host_parallelism", self.host_parallelism as u64)
            .set("jobs", self.jobs as u64)
            .set("quick", self.quick)
            .set(
                "workloads",
                Json::Arr(
                    self.workloads
                        .iter()
                        .map(|w| {
                            let mut o = Json::object();
                            o.set("name", w.name)
                                .set("units", w.units as u64)
                                .set("serial_secs", w.serial_secs)
                                .set("parallel_secs", w.parallel_secs)
                                .set("speedup", w.speedup());
                            o
                        })
                        .collect(),
                ),
            )
            .set(
                "schemes",
                Json::Arr(
                    self.schemes
                        .iter()
                        .map(|s| {
                            let mut o = Json::object();
                            o.set("scheme", s.scheme.as_str())
                                .set("accesses", s.accesses)
                                .set("secs", s.secs)
                                .set("accesses_per_sec", s.accesses_per_sec);
                            o
                        })
                        .collect(),
                ),
            );
        j
    }
}

/// The standard Q-mix compare setup: every scheme on Q3, the same system
/// the `compare` command defaults to.
fn compare_setup() -> (WorkloadMix, SystemConfig) {
    let mix = WorkloadMix::quad("Q3").expect("Q3 is a known mix");
    (mix, SystemConfig::quad_core().with_cache_mb(8))
}

/// Runs the benchmark.
///
/// # Panics
///
/// Panics if a simulation rejects its parameters, which cannot happen
/// with the built-in workload sizes.
#[must_use]
pub fn run(opts: &BenchOptions) -> BenchReport {
    let jobs = opts.jobs.max(1);
    let mut workloads = Vec::new();

    // -------- compare: every scheme on the standard Q-mix, timed run.
    let accesses = if opts.quick { 3_000 } else { 20_000 };
    let (mix, system) = compare_setup();
    let run_compare = |jobs: usize| -> Vec<(String, u64, f64)> {
        bimodal_exec::map(jobs, SchemeKind::all(), |kind| {
            let t = Instant::now();
            let r = Simulation::new(system.clone(), kind)
                .run_mix(&mix, accesses)
                .expect("bench parameters are valid");
            let accesses = r.dram_cache_accesses();
            (r.scheme_name, accesses, t.elapsed().as_secs_f64())
        })
    };
    let t = Instant::now();
    let serial_runs = run_compare(1);
    let serial_secs = t.elapsed().as_secs_f64();
    let t = Instant::now();
    let parallel_runs = run_compare(jobs);
    let parallel_secs = t.elapsed().as_secs_f64();
    workloads.push(WorkloadTiming {
        name: "compare",
        units: parallel_runs.len(),
        serial_secs,
        parallel_secs,
    });
    let schemes = serial_runs
        .into_iter()
        .map(|(scheme, accesses, secs)| SchemeRate {
            scheme,
            accesses,
            accesses_per_sec: if secs > 0.0 {
                accesses as f64 / secs
            } else {
                0.0
            },
            secs,
        })
        .collect();

    // -------- sweep: functional miss rate across block sizes.
    let sweep_accesses = if opts.quick { 40_000 } else { 300_000 };
    let sizes = [64u32, 128, 256, 512, 1024, 2048, 4096];
    let scaled = mix.clone().with_footprint_scale(system.footprint_scale);
    let run_sweep = |jobs: usize| -> f64 {
        let t = Instant::now();
        let points = sweep::miss_rate_vs_block_size_jobs(
            &scaled,
            system.cache_bytes(),
            &sizes,
            sweep_accesses,
            system.seed,
            jobs,
        );
        assert_eq!(points.len(), sizes.len());
        t.elapsed().as_secs_f64()
    };
    let serial_secs = run_sweep(1);
    let parallel_secs = run_sweep(jobs);
    workloads.push(WorkloadTiming {
        name: "sweep",
        units: sizes.len(),
        serial_secs,
        parallel_secs,
    });

    // -------- antt: multiprogrammed run plus per-program standalones.
    let antt_accesses = if opts.quick { 2_000 } else { 10_000 };
    let sim = Simulation::new(system.clone(), SchemeKind::BiModal);
    let run_antt = |jobs: usize| -> f64 {
        let t = Instant::now();
        let r = sim
            .run_antt_jobs(&mix, antt_accesses, jobs)
            .expect("bench parameters are valid");
        assert!(r.antt() > 0.0);
        t.elapsed().as_secs_f64()
    };
    let serial_secs = run_antt(1);
    let parallel_secs = run_antt(jobs);
    workloads.push(WorkloadTiming {
        name: "antt",
        units: 1 + mix.cores(),
        serial_secs,
        parallel_secs,
    });

    BenchReport {
        date: utc_date_string(),
        host_parallelism: bimodal_exec::available_jobs(),
        jobs,
        quick: opts.quick,
        workloads,
        schemes,
    }
}

/// Today's UTC date as `YYYY-MM-DD`, from the system clock alone (no
/// external time crates; civil-from-days per Howard Hinnant's algorithm).
fn utc_date_string() -> String {
    let secs = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_secs())
        .unwrap_or(0);
    let (y, m, d) = civil_from_days((secs / 86_400) as i64);
    format!("{y:04}-{m:02}-{d:02}")
}

fn civil_from_days(z: i64) -> (i64, u32, u32) {
    let z = z + 719_468;
    let era = if z >= 0 { z } else { z - 146_096 } / 146_097;
    let doe = z - era * 146_097; // [0, 146096]
    let yoe = (doe - doe / 1_460 + doe / 36_524 - doe / 146_096) / 365;
    let doy = doe - (365 * yoe + yoe / 4 - yoe / 100);
    let mp = (5 * doy + 2) / 153;
    let d = u32::try_from(doy - (153 * mp + 2) / 5 + 1).expect("day of month");
    let m = u32::try_from(if mp < 10 { mp + 3 } else { mp - 9 }).expect("month");
    let y = yoe + era * 400 + i64::from(m <= 2);
    (y, m, d)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn civil_from_days_known_dates() {
        assert_eq!(civil_from_days(0), (1970, 1, 1));
        assert_eq!(civil_from_days(19_723), (2024, 1, 1)); // leap year
        assert_eq!(civil_from_days(19_782), (2024, 2, 29));
        assert_eq!(civil_from_days(20_670), (2026, 8, 5));
    }

    #[test]
    fn quick_bench_produces_all_sections() {
        let r = run(&BenchOptions {
            quick: true,
            jobs: 2,
        });
        assert_eq!(r.workloads.len(), 3);
        assert_eq!(r.schemes.len(), SchemeKind::all().len());
        assert!(r.schemes.iter().all(|s| s.accesses_per_sec > 0.0));
        assert!(r.compare_speedup() > 0.0);
        let json = r.to_json().to_pretty();
        for key in ["bimodal-bench-v1", "workloads", "schemes", "speedup"] {
            assert!(json.contains(key), "missing {key}");
        }
    }
}
