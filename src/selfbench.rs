//! Self-benchmarking harness behind `bimodal bench`.
//!
//! Times representative serial-vs-parallel workloads (the multi-scheme
//! compare, the functional block-size sweep, and the ANTT standalone
//! fan-out) and reports per-scheme simulation throughput, so every PR
//! has a perf trajectory to regress against. The numbers go into
//! `BENCH_<date>.json` (see [`BenchReport::to_json`] for the schema).
//!
//! Wall-clock numbers are honest about the host: `host_parallelism`
//! records how many cores the measurement actually had, so a ~1.0×
//! "speedup" on a single-core box reads as the hardware limit it is,
//! not a regression.

use std::time::Instant;

use bimodal_dram::BackendKind;
use bimodal_obs::Json;
use bimodal_sim::{sweep, SchemeKind, Simulation, SystemConfig};
use bimodal_workloads::WorkloadMix;

/// What `bimodal bench` should run.
#[derive(Debug, Clone)]
pub struct BenchOptions {
    /// Shrink every workload (CI smoke mode).
    pub quick: bool,
    /// Worker threads for the parallel passes.
    pub jobs: usize,
    /// Intra-run decode shards; above 1, a second per-scheme throughput
    /// pass runs with the sharded decode pipeline so the sharded path has
    /// its own trendline alongside serial.
    pub shards: u32,
    /// Memory-substrate backend the timed runs execute on. Non-default
    /// backends get their own history keys (`<scheme>@<backend>`), so
    /// substrate trendlines never mix with the paper-default ones.
    pub backend: BackendKind,
}

/// One serial-vs-parallel timing of a fanned command.
#[derive(Debug, Clone)]
pub struct WorkloadTiming {
    /// Command-like name (`compare`, `sweep`, `antt`).
    pub name: &'static str,
    /// Independent units the command fans out.
    pub units: usize,
    /// Wall-clock seconds with `--jobs 1`.
    pub serial_secs: f64,
    /// Wall-clock seconds with `--jobs N`.
    pub parallel_secs: f64,
}

impl WorkloadTiming {
    /// Serial time over parallel time (1.0 = no gain).
    #[must_use]
    pub fn speedup(&self) -> f64 {
        if self.parallel_secs > 0.0 {
            self.serial_secs / self.parallel_secs
        } else {
            1.0
        }
    }
}

/// Simulation throughput of one scheme on the compare workload.
#[derive(Debug, Clone)]
pub struct SchemeRate {
    /// Scheme name as reported by the scheme itself.
    pub scheme: String,
    /// DRAM-cache accesses the timed run performed.
    pub accesses: u64,
    /// Wall-clock seconds of that run.
    pub secs: f64,
    /// `accesses / secs`.
    pub accesses_per_sec: f64,
}

/// Everything `bimodal bench` measured.
#[derive(Debug, Clone)]
pub struct BenchReport {
    /// UTC date the benchmark ran (`YYYY-MM-DD`).
    pub date: String,
    /// Cores the host actually offered the measurement.
    pub host_parallelism: usize,
    /// Worker threads the parallel passes used.
    pub jobs: usize,
    /// Whether the quick (CI smoke) sizes were used.
    pub quick: bool,
    /// Serial-vs-parallel timings per command.
    pub workloads: Vec<WorkloadTiming>,
    /// Per-scheme simulation throughput on the compare workload.
    pub schemes: Vec<SchemeRate>,
    /// Decode shards the sharded pass used (1 = pass skipped).
    pub shards: u32,
    /// Per-scheme throughput with `--shards` decode; empty when the
    /// sharded pass was skipped.
    pub sharded_schemes: Vec<SchemeRate>,
    /// Memory-substrate backend the measurement ran on.
    pub backend: BackendKind,
}

impl BenchReport {
    /// Speedup of the compare workload (the CI assertion target).
    #[must_use]
    pub fn compare_speedup(&self) -> f64 {
        self.workloads
            .iter()
            .find(|w| w.name == "compare")
            .map_or(1.0, WorkloadTiming::speedup)
    }

    /// The `BENCH_*.json` document:
    ///
    /// ```json
    /// {
    ///   "schema": "bimodal-bench-v1",
    ///   "date": "2026-08-05",
    ///   "host_parallelism": 4, "jobs": 4, "quick": false,
    ///   "workloads": [{"name": "compare", "units": 9,
    ///                  "serial_secs": 1.2, "parallel_secs": 0.4,
    ///                  "speedup": 3.0}, ...],
    ///   "schemes": [{"scheme": "BiModal", "accesses": 123456,
    ///                "secs": 0.21, "accesses_per_sec": 587885.7}, ...]
    /// }
    /// ```
    #[must_use]
    pub fn to_json(&self) -> Json {
        let rates = |list: &[SchemeRate]| {
            Json::Arr(
                list.iter()
                    .map(|s| {
                        let mut o = Json::object();
                        o.set("scheme", s.scheme.as_str())
                            .set("accesses", s.accesses)
                            .set("secs", s.secs)
                            .set("accesses_per_sec", s.accesses_per_sec);
                        o
                    })
                    .collect(),
            )
        };
        let mut j = Json::object();
        j.set("schema", "bimodal-bench-v1")
            .set("date", self.date.as_str())
            .set("backend", self.backend.name())
            .set("host_parallelism", self.host_parallelism as u64)
            .set("jobs", self.jobs as u64)
            .set("quick", self.quick)
            .set("shards", u64::from(self.shards))
            .set(
                "workloads",
                Json::Arr(
                    self.workloads
                        .iter()
                        .map(|w| {
                            let mut o = Json::object();
                            o.set("name", w.name)
                                .set("units", w.units as u64)
                                .set("serial_secs", w.serial_secs)
                                .set("parallel_secs", w.parallel_secs)
                                .set("speedup", w.speedup());
                            if w.speedup() < 1.0 {
                                // Sub-1.0 points must be self-describing:
                                // on a starved host they are the hardware
                                // ceiling, not a parallelism regression.
                                o.set("host_limited", self.host_parallelism == 1)
                                    .set("host_parallelism", self.host_parallelism as u64);
                            }
                            o
                        })
                        .collect(),
                ),
            )
            .set("schemes", rates(&self.schemes));
        if !self.sharded_schemes.is_empty() {
            j.set("sharded_schemes", rates(&self.sharded_schemes));
        }
        j
    }
}

/// Outcome of a perf gate: pass, degrade to a warning (the measurement
/// cannot support the assertion), or fail.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum GateOutcome {
    /// The gate held.
    Pass,
    /// The gate could not be meaningfully evaluated; explains why.
    Warn(String),
    /// The gate tripped; explains by how much.
    Fail(String),
}

/// Evaluates the `--min-speedup` gate against the compare workload.
///
/// On a single-core host parallel speedup is physically capped at ~1.0×,
/// so any threshold above that would flake on every run; the gate
/// degrades to [`GateOutcome::Warn`] there instead of failing.
#[must_use]
pub fn speedup_gate(report: &BenchReport, min_speedup: f64) -> GateOutcome {
    let got = report.compare_speedup();
    if got >= min_speedup {
        GateOutcome::Pass
    } else if report.host_parallelism == 1 {
        GateOutcome::Warn(format!(
            "compare speedup {got:.2}x below {min_speedup:.2}x, but the host offered only \
             1 core; parallel speedup is not measurable here (gate downgraded to a warning)"
        ))
    } else {
        GateOutcome::Fail(format!(
            "compare speedup {got:.2}x below required {min_speedup:.2}x \
             (host_parallelism {})",
            report.host_parallelism
        ))
    }
}

impl BenchReport {
    /// One line of `BENCH_HISTORY.jsonl`: the per-scheme throughput of
    /// this run, compact, self-describing:
    ///
    /// ```json
    /// {"schema": "bimodal-bench-history-v1", "date": "2026-08-08",
    ///  "quick": true, "jobs": 2, "host_parallelism": 2,
    ///  "schemes": {"BiModal": 587885.7, ...}}
    /// ```
    #[must_use]
    pub fn history_line(&self) -> String {
        // Non-default substrates get their own keys so their trendlines
        // never mix with the paper-default ones.
        let tag = if self.backend == BackendKind::default() {
            String::new()
        } else {
            format!("@{}", self.backend.name())
        };
        let mut schemes = Json::object();
        for s in &self.schemes {
            schemes.set(format!("{}{tag}", s.scheme).as_str(), s.accesses_per_sec);
        }
        // Sharded rates ride along under distinct keys so the trendline
        // gate tracks the sharded decode path independently of serial.
        for s in &self.sharded_schemes {
            schemes.set(
                format!("{}{tag}@shards{}", s.scheme, self.shards).as_str(),
                s.accesses_per_sec,
            );
        }
        let mut j = Json::object();
        j.set("schema", "bimodal-bench-history-v1")
            .set("date", self.date.as_str())
            .set("quick", self.quick)
            .set("jobs", self.jobs as u64)
            .set("host_parallelism", self.host_parallelism as u64)
            .set("schemes", schemes);
        j.to_compact()
    }
}

/// One parsed `BENCH_HISTORY.jsonl` point.
#[derive(Debug, Clone)]
struct HistoryPoint {
    quick: bool,
    /// `(scheme, accesses_per_sec)` pairs.
    schemes: Vec<(String, f64)>,
}

/// What [`check_history`] concluded.
#[derive(Debug, Clone)]
pub struct HistoryVerdict {
    /// Trailing points (matching the newest point's `quick` flag) the
    /// medians were computed over.
    pub baseline_points: usize,
    /// One human-readable line per scheme in the newest point.
    pub lines: Vec<String>,
    /// Schemes whose newest throughput regressed beyond the threshold.
    pub regressions: Vec<String>,
}

impl HistoryVerdict {
    /// Whether the newest point passed the trendline gate.
    #[must_use]
    pub fn passed(&self) -> bool {
        self.regressions.is_empty()
    }
}

/// Checks the newest `BENCH_HISTORY.jsonl` point against the trailing
/// median of the previous up-to-`window` points with the same `quick`
/// flag (quick and full runs have incomparable sizes). A scheme regresses
/// when its newest accesses/sec falls more than `max_regress_pct`
/// percent below its median. With fewer than two comparable points the
/// check passes vacuously (noted in `lines`).
///
/// # Errors
///
/// Returns a message if `text` holds no valid history lines (corrupt
/// JSON, wrong schema, or empty input).
pub fn check_history(
    text: &str,
    window: usize,
    max_regress_pct: f64,
) -> Result<HistoryVerdict, String> {
    let mut points = Vec::new();
    for (i, line) in text.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        let j = Json::parse(line).map_err(|e| format!("history line {}: {e}", i + 1))?;
        if j.get("schema").and_then(Json::as_str) != Some("bimodal-bench-history-v1") {
            return Err(format!("history line {}: not a bench-history point", i + 1));
        }
        let quick = matches!(j.get("quick"), Some(Json::Bool(true)));
        let Some(Json::Obj(pairs)) = j.get("schemes") else {
            return Err(format!("history line {}: missing schemes object", i + 1));
        };
        let schemes = pairs
            .iter()
            .filter_map(|(k, v)| v.as_f64().map(|r| (k.clone(), r)))
            .collect();
        points.push(HistoryPoint { quick, schemes });
    }
    let Some(newest) = points.pop() else {
        return Err("history is empty; run `bimodal bench --history FILE` first".into());
    };
    let baseline: Vec<&HistoryPoint> = points
        .iter()
        .rev()
        .filter(|p| p.quick == newest.quick)
        .take(window.max(1))
        .collect();
    let mut verdict = HistoryVerdict {
        baseline_points: baseline.len(),
        lines: Vec::new(),
        regressions: Vec::new(),
    };
    if baseline.is_empty() {
        verdict.lines.push(format!(
            "no earlier {} points to compare against; gate passes vacuously",
            if newest.quick { "quick" } else { "full" }
        ));
        return Ok(verdict);
    }
    for (scheme, rate) in &newest.schemes {
        let mut rates: Vec<f64> = baseline
            .iter()
            .filter_map(|p| p.schemes.iter().find(|(s, _)| s == scheme).map(|&(_, r)| r))
            .collect();
        if rates.is_empty() {
            verdict
                .lines
                .push(format!("{scheme}: new scheme, no baseline"));
            continue;
        }
        rates.sort_by(f64::total_cmp);
        let median = rates[rates.len() / 2];
        let floor = median * (1.0 - max_regress_pct / 100.0);
        let delta_pct = if median > 0.0 {
            (rate / median - 1.0) * 100.0
        } else {
            0.0
        };
        let ok = *rate >= floor;
        verdict.lines.push(format!(
            "{scheme}: {rate:.0} acc/s vs median {median:.0} over {} points ({delta_pct:+.1}%){}",
            rates.len(),
            if ok { "" } else { "  << REGRESSION" },
        ));
        if !ok {
            verdict.regressions.push(scheme.clone());
        }
    }
    Ok(verdict)
}

/// The standard Q-mix compare setup: every scheme on Q3, the same system
/// the `compare` command defaults to.
fn compare_setup(backend: BackendKind) -> (WorkloadMix, SystemConfig) {
    let mix = WorkloadMix::quad("Q3").expect("Q3 is a known mix");
    let system = SystemConfig::quad_core()
        .with_backend(backend)
        .with_cache_mb(8);
    (mix, system)
}

/// Runs the benchmark.
///
/// # Panics
///
/// Panics if a simulation rejects its parameters, which cannot happen
/// with the built-in workload sizes.
#[must_use]
pub fn run(opts: &BenchOptions) -> BenchReport {
    let jobs = opts.jobs.max(1);
    let mut workloads = Vec::new();

    // -------- compare: every scheme on the standard Q-mix, timed run.
    let accesses = if opts.quick { 3_000 } else { 20_000 };
    let (mix, system) = compare_setup(opts.backend);
    let run_compare = |jobs: usize, shards: u32| -> Vec<(String, u64, f64)> {
        bimodal_exec::map(jobs, SchemeKind::all(), |kind| {
            let t = Instant::now();
            let r = Simulation::new(system.clone(), kind)
                .with_shards(shards)
                .run_mix(&mix, accesses)
                .expect("bench parameters are valid");
            let accesses = r.dram_cache_accesses();
            (r.scheme_name, accesses, t.elapsed().as_secs_f64())
        })
    };
    let to_rates = |runs: Vec<(String, u64, f64)>| -> Vec<SchemeRate> {
        runs.into_iter()
            .map(|(scheme, accesses, secs)| SchemeRate {
                scheme,
                accesses,
                accesses_per_sec: if secs > 0.0 {
                    accesses as f64 / secs
                } else {
                    0.0
                },
                secs,
            })
            .collect()
    };
    let t = Instant::now();
    let serial_runs = run_compare(1, 1);
    let serial_secs = t.elapsed().as_secs_f64();
    let t = Instant::now();
    let parallel_runs = run_compare(jobs, 1);
    let parallel_secs = t.elapsed().as_secs_f64();
    workloads.push(WorkloadTiming {
        name: "compare",
        units: parallel_runs.len(),
        serial_secs,
        parallel_secs,
    });
    let schemes = to_rates(serial_runs);
    // Sharded decode throughput: same schemes, same workload, decode
    // pipelined across `opts.shards` worker threads. Reports from this
    // pass are bit-identical to serial, so only the wall-clock differs.
    let shards = opts.shards.max(1);
    let sharded_schemes = if shards > 1 {
        to_rates(run_compare(1, shards))
    } else {
        Vec::new()
    };

    // -------- sweep: functional miss rate across block sizes.
    let sweep_accesses = if opts.quick { 40_000 } else { 300_000 };
    let sizes = [64u32, 128, 256, 512, 1024, 2048, 4096];
    let scaled = mix.clone().with_footprint_scale(system.footprint_scale);
    let run_sweep = |jobs: usize| -> f64 {
        let t = Instant::now();
        let points = sweep::miss_rate_vs_block_size_jobs(
            &scaled,
            system.cache_bytes(),
            &sizes,
            sweep_accesses,
            system.seed,
            jobs,
        );
        assert_eq!(points.len(), sizes.len());
        t.elapsed().as_secs_f64()
    };
    let serial_secs = run_sweep(1);
    let parallel_secs = run_sweep(jobs);
    workloads.push(WorkloadTiming {
        name: "sweep",
        units: sizes.len(),
        serial_secs,
        parallel_secs,
    });

    // -------- antt: multiprogrammed run plus per-program standalones.
    let antt_accesses = if opts.quick { 2_000 } else { 10_000 };
    let sim = Simulation::new(system.clone(), SchemeKind::BiModal);
    let run_antt = |jobs: usize| -> f64 {
        let t = Instant::now();
        let r = sim
            .run_antt_jobs(&mix, antt_accesses, jobs)
            .expect("bench parameters are valid");
        assert!(r.antt() > 0.0);
        t.elapsed().as_secs_f64()
    };
    let serial_secs = run_antt(1);
    let parallel_secs = run_antt(jobs);
    workloads.push(WorkloadTiming {
        name: "antt",
        units: 1 + mix.cores(),
        serial_secs,
        parallel_secs,
    });

    BenchReport {
        date: utc_date_string(),
        host_parallelism: bimodal_exec::available_jobs(),
        jobs,
        quick: opts.quick,
        workloads,
        schemes,
        shards,
        sharded_schemes,
        backend: opts.backend,
    }
}

/// Today's UTC date as `YYYY-MM-DD`, from the system clock alone (no
/// external time crates; civil-from-days per Howard Hinnant's algorithm).
fn utc_date_string() -> String {
    let secs = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_secs())
        .unwrap_or(0);
    let (y, m, d) = civil_from_days((secs / 86_400) as i64);
    format!("{y:04}-{m:02}-{d:02}")
}

fn civil_from_days(z: i64) -> (i64, u32, u32) {
    let z = z + 719_468;
    let era = if z >= 0 { z } else { z - 146_096 } / 146_097;
    let doe = z - era * 146_097; // [0, 146096]
    let yoe = (doe - doe / 1_460 + doe / 36_524 - doe / 146_096) / 365;
    let doy = doe - (365 * yoe + yoe / 4 - yoe / 100);
    let mp = (5 * doy + 2) / 153;
    let d = u32::try_from(doy - (153 * mp + 2) / 5 + 1).expect("day of month");
    let m = u32::try_from(if mp < 10 { mp + 3 } else { mp - 9 }).expect("month");
    let y = yoe + era * 400 + i64::from(m <= 2);
    (y, m, d)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn civil_from_days_known_dates() {
        assert_eq!(civil_from_days(0), (1970, 1, 1));
        assert_eq!(civil_from_days(19_723), (2024, 1, 1)); // leap year
        assert_eq!(civil_from_days(19_782), (2024, 2, 29));
        assert_eq!(civil_from_days(20_670), (2026, 8, 5));
    }

    fn report_with(host_parallelism: usize, serial: f64, parallel: f64) -> BenchReport {
        BenchReport {
            date: "2026-08-08".into(),
            host_parallelism,
            jobs: 2,
            quick: true,
            workloads: vec![WorkloadTiming {
                name: "compare",
                units: 9,
                serial_secs: serial,
                parallel_secs: parallel,
            }],
            schemes: vec![SchemeRate {
                scheme: "BiModal".into(),
                accesses: 1000,
                secs: 0.5,
                accesses_per_sec: 2000.0,
            }],
            shards: 1,
            sharded_schemes: Vec::new(),
            backend: BackendKind::default(),
        }
    }

    #[test]
    fn speedup_gate_warns_instead_of_failing_on_one_core() {
        // 1.0x speedup against a 1.2x requirement.
        let r = report_with(1, 1.0, 1.0);
        match speedup_gate(&r, 1.2) {
            GateOutcome::Warn(msg) => assert!(msg.contains("1 core"), "{msg}"),
            other => panic!("expected Warn on a single-core host, got {other:?}"),
        }
        // The same shortfall on a multi-core host is a hard failure...
        assert!(matches!(
            speedup_gate(&report_with(4, 1.0, 1.0), 1.2),
            GateOutcome::Fail(_)
        ));
        // ...and meeting the bar passes regardless of cores.
        assert_eq!(
            speedup_gate(&report_with(1, 2.0, 1.0), 1.2),
            GateOutcome::Pass
        );
    }

    fn history_point(rate: f64) -> String {
        format!(
            "{{\"schema\": \"bimodal-bench-history-v1\", \"date\": \"2026-08-08\", \
             \"quick\": true, \"jobs\": 2, \"host_parallelism\": 2, \
             \"schemes\": {{\"BiModal\": {rate}}}}}"
        )
    }

    #[test]
    fn history_line_round_trips_through_check() {
        let r = report_with(2, 1.0, 0.5);
        let text = format!("{}\n{}\n", r.history_line(), r.history_line());
        let v = check_history(&text, 5, 25.0).expect("parses");
        assert_eq!(v.baseline_points, 1);
        assert!(v.passed());
    }

    #[test]
    fn check_history_trips_on_regression_and_passes_on_flat() {
        let mut lines: Vec<String> = (0..5).map(|_| history_point(1000.0)).collect();
        lines.push(history_point(900.0)); // -10%: within a 25% budget
        let v = check_history(&lines.join("\n"), 5, 25.0).expect("parses");
        assert!(v.passed(), "{:?}", v.lines);

        lines.pop();
        lines.push(history_point(500.0)); // -50%: trips
        let v = check_history(&lines.join("\n"), 5, 25.0).expect("parses");
        assert!(!v.passed());
        assert_eq!(v.regressions, vec!["BiModal".to_owned()]);
    }

    #[test]
    fn check_history_single_point_passes_vacuously() {
        let v = check_history(&history_point(1000.0), 5, 25.0).expect("parses");
        assert!(v.passed());
        assert_eq!(v.baseline_points, 0);
    }

    #[test]
    fn check_history_ignores_points_with_other_quick_flag() {
        let full = history_point(4000.0).replace("\"quick\": true", "\"quick\": false");
        let text = format!(
            "{}\n{}\n{}",
            full,
            history_point(1000.0),
            history_point(990.0)
        );
        let v = check_history(&text, 5, 25.0).expect("parses");
        // Only the quick point is a comparable baseline.
        assert_eq!(v.baseline_points, 1);
        assert!(v.passed(), "{:?}", v.lines);
    }

    #[test]
    fn check_history_rejects_garbage() {
        assert!(check_history("", 5, 25.0).is_err());
        assert!(check_history("{not json", 5, 25.0).is_err());
        assert!(check_history("{\"schema\": \"other\"}", 5, 25.0).is_err());
    }

    #[test]
    fn quick_bench_produces_all_sections() {
        let r = run(&BenchOptions {
            quick: true,
            jobs: 2,
            shards: 2,
            backend: BackendKind::default(),
        });
        assert_eq!(r.workloads.len(), 3);
        assert_eq!(r.schemes.len(), SchemeKind::all().len());
        assert!(r.schemes.iter().all(|s| s.accesses_per_sec > 0.0));
        assert_eq!(r.sharded_schemes.len(), SchemeKind::all().len());
        assert!(r.sharded_schemes.iter().all(|s| s.accesses_per_sec > 0.0));
        // Sharded decode replays the same access stream: the work done
        // (and hence the accesses counted) matches the serial pass.
        for (serial, sharded) in r.schemes.iter().zip(&r.sharded_schemes) {
            assert_eq!(serial.scheme, sharded.scheme);
            assert_eq!(serial.accesses, sharded.accesses);
        }
        assert!(r.compare_speedup() > 0.0);
        let json = r.to_json().to_pretty();
        for key in [
            "bimodal-bench-v1",
            "workloads",
            "schemes",
            "speedup",
            "sharded_schemes",
        ] {
            assert!(json.contains(key), "missing {key}");
        }
    }

    #[test]
    fn sub_unity_speedups_carry_host_context() {
        // 0.8x "speedup" on a 1-core host: annotated as host-limited.
        let r = report_with(1, 0.8, 1.0);
        let json = r.to_json().to_pretty();
        assert!(json.contains("\"host_limited\": true"), "{json}");
        // The same shape on a 4-core host is a real slowdown, not a
        // hardware ceiling.
        let r = report_with(4, 0.8, 1.0);
        let json = r.to_json().to_pretty();
        assert!(json.contains("\"host_limited\": false"), "{json}");
        // At or above 1.0x no annotation appears at all.
        let r = report_with(1, 1.0, 1.0);
        assert!(!r.to_json().to_pretty().contains("host_limited"));
    }

    #[test]
    fn non_default_backend_rates_ride_history_under_scoped_keys() {
        let mut r = report_with(2, 1.0, 0.5);
        r.backend = BackendKind::Hbm2;
        r.shards = 4;
        r.sharded_schemes = vec![SchemeRate {
            scheme: "BiModal".into(),
            accesses: 1000,
            secs: 0.25,
            accesses_per_sec: 4000.0,
        }];
        let line = r.history_line();
        assert!(line.contains("\"BiModal@hbm2\""), "{line}");
        assert!(line.contains("\"BiModal@hbm2@shards4\""), "{line}");
        // The default-backend key must NOT appear: substrate trendlines
        // stay separate.
        assert!(!line.contains("\"BiModal\":"), "{line}");
        let text = format!("{line}\n{line}\n");
        let v = check_history(&text, 5, 25.0).expect("parses");
        assert!(v.passed());
    }

    #[test]
    fn sharded_rates_ride_history_under_distinct_keys() {
        let mut r = report_with(2, 1.0, 0.5);
        r.shards = 4;
        r.sharded_schemes = vec![SchemeRate {
            scheme: "BiModal".into(),
            accesses: 1000,
            secs: 0.25,
            accesses_per_sec: 4000.0,
        }];
        let line = r.history_line();
        assert!(line.contains("\"BiModal@shards4\""), "{line}");
        // Both keys survive the trendline check independently.
        let text = format!("{line}\n{line}\n");
        let v = check_history(&text, 5, 25.0).expect("parses");
        assert!(v.passed());
        assert_eq!(v.lines.len(), 2, "{:?}", v.lines);
    }
}
