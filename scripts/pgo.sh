#!/usr/bin/env bash
# Profile-guided-optimization release pipeline for the bimodal binary.
#
#   scripts/pgo.sh [--quick]
#
# Stages:
#   1. build an instrumented release binary (-Cprofile-generate)
#   2. run representative workloads (every scheme on the standard Q-mix
#      compare, a single bimodal run, and the block-size sweep) to
#      collect profiles
#   3. merge the raw profiles with llvm-profdata
#   4. rebuild with -Cprofile-use
#   5. assert the PGO binary's run report is byte-identical to the plain
#      release binary's (PGO must change codegen, never results)
#
# The final binary lands at target/pgo/release/bimodal. The plain
# release build in target/release is left untouched so the two can be
# benchmarked side by side.
#
# If no llvm-profdata is available (neither the rustup llvm-tools
# component nor a system LLVM), the script explains how to get one and
# exits 0 so callers can treat PGO as best-effort.
set -euo pipefail

cd "$(dirname "$0")/.."

QUICK=0
for arg in "$@"; do
  case "$arg" in
    --quick) QUICK=1 ;;
    *) echo "usage: scripts/pgo.sh [--quick]" >&2; exit 2 ;;
  esac
done

HOST=$(rustc -vV | sed -n 's/^host: //p')
SYSROOT_TOOL="$(rustc --print sysroot)/lib/rustlib/${HOST}/bin/llvm-profdata"
if [ -x "$SYSROOT_TOOL" ]; then
  PROFDATA="$SYSROOT_TOOL"
elif command -v llvm-profdata >/dev/null 2>&1; then
  # A system llvm-profdata usually reads rustc's raw profiles fine; a
  # major-version mismatch fails loudly at the merge step below.
  PROFDATA=$(command -v llvm-profdata)
else
  echo "pgo: no llvm-profdata found (try: rustup component add llvm-tools)" >&2
  echo "pgo: skipping — the plain release build is unaffected" >&2
  exit 0
fi
echo "pgo: using $PROFDATA"

PROF_DIR="target/pgo/profiles"
rm -rf "$PROF_DIR" target/pgo/merged.profdata
mkdir -p "$PROF_DIR"

echo "pgo: [1/5] building instrumented binary..."
RUSTFLAGS="-Cprofile-generate=$(pwd)/$PROF_DIR" \
  cargo build --release --target-dir target/pgo-gen -q
INST=target/pgo-gen/release/bimodal

if [ "$QUICK" = 1 ]; then
  CMP_ACCESSES=4000; RUN_ACCESSES=20000; SWEEP_ACCESSES=40000
else
  CMP_ACCESSES=20000; RUN_ACCESSES=200000; SWEEP_ACCESSES=300000
fi

echo "pgo: [2/5] collecting profiles (compare/run/sweep)..."
"$INST" compare --mix Q3 --accesses "$CMP_ACCESSES" --cache-mb 8 \
  --json target/pgo/train-compare.json >/dev/null
"$INST" run --mix Q1 --scheme bimodal --accesses "$RUN_ACCESSES" \
  --cache-mb 8 --json target/pgo/train-run.json >/dev/null
"$INST" sweep --mix Q2 --accesses "$SWEEP_ACCESSES" \
  --json target/pgo/train-sweep.json >/dev/null

echo "pgo: [3/5] merging raw profiles..."
if ! "$PROFDATA" merge -o target/pgo/merged.profdata "$PROF_DIR"; then
  echo "pgo: llvm-profdata could not read the raw profiles — its LLVM" >&2
  echo "pgo: version likely differs from rustc's (try: rustup component" >&2
  echo "pgo: add llvm-tools, which installs a matching tool)" >&2
  echo "pgo: skipping — the plain release build is unaffected" >&2
  exit 0
fi

echo "pgo: [4/5] building PGO-optimized binary..."
RUSTFLAGS="-Cprofile-use=$(pwd)/target/pgo/merged.profdata" \
  cargo build --release --target-dir target/pgo -q
PGO=target/pgo/release/bimodal

echo "pgo: [5/5] asserting PGO output is byte-identical to plain release..."
cargo build --release -q
PLAIN=target/release/bimodal
"$PLAIN" run --mix Q1 --scheme bimodal --accesses 20000 --cache-mb 4 \
  --seed 7 --json target/pgo/check-plain.json >/dev/null
"$PGO" run --mix Q1 --scheme bimodal --accesses 20000 --cache-mb 4 \
  --seed 7 --json target/pgo/check-pgo.json >/dev/null
"$PLAIN" diff target/pgo/check-plain.json target/pgo/check-pgo.json --exact
"$PLAIN" compare --mix Q3 --accesses 4000 --json target/pgo/cmp-plain.json >/dev/null
"$PGO" compare --mix Q3 --accesses 4000 --json target/pgo/cmp-pgo.json >/dev/null
cmp target/pgo/cmp-plain.json target/pgo/cmp-pgo.json

echo "pgo: done — optimized binary at $PGO"
